#include "federation/gateway.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/logging.h"

namespace gpunion::federation {

RegionGateway::RegionGateway(sim::Environment& env,
                             sched::Coordinator& coordinator,
                             storage::CheckpointStore& store,
                             db::Database& database, net::Transport& wan,
                             std::string region_name, std::string broker_id,
                             RegionPolicy policy)
    : env_(env),
      coordinator_(coordinator),
      store_(store),
      database_(database),
      wan_(wan),
      region_(std::move(region_name)),
      gateway_id_("gw-" + region_),
      broker_id_(std::move(broker_id)),
      policy_(policy),
      tick_timer_(env, policy.digest_interval, [this] { tick(); }) {
  assert(!region_.empty() && "region requires a name");
}

RegionGateway::~RegionGateway() = default;

void RegionGateway::start() {
  assert(!started_ && "RegionGateway::start called twice");
  started_ = true;
  wan_.register_endpoint(gateway_id_, [this](net::Message&& msg) {
    handle_message(std::move(msg));
  });
  tick();  // first digest goes out immediately, not one interval late
  tick_timer_.start();
}

void RegionGateway::tick() {
  publish_digest();
  sweep_remote_jobs();
  scan_for_forwards();
}

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

void RegionGateway::publish_digest() {
  DigestMessage digest;
  digest.region = region_;
  digest.gateway_id = gateway_id_;
  digest.capacity = coordinator_.directory().capacity_summary();
  digest.seq = ++digest_seq_;
  digest.generated_at = env_.now();
  send(broker_id_, kCapacityDigest, std::move(digest), kDigestBytes);
  ++stats_.digests_published;
}

// ---------------------------------------------------------------------------
// Outbound: forward local jobs that cannot be served here
// ---------------------------------------------------------------------------

bool RegionGateway::locally_placeable(const workload::JobSpec& job) {
  // The placement engine's own gating (policy, strategy fractional
  // preference, reliability degradation) is the single source of truth:
  // forwarding out a job the engine could place wastes a WAN round-trip,
  // and admitting one it can never place parks the job pending forever.
  return coordinator_.placement_engine().any_eligible(job, env_.now());
}

void RegionGateway::scan_for_forwards() {
  if (!policy_.forward_training && !policy_.forward_interactive) return;
  // Expired backoff entries are dead weight either way: the next check is
  // a fresh decision.  Pruning here bounds the map to the backoff window.
  for (auto it = retry_after_.begin(); it != retry_after_.end();) {
    if (env_.now() >= it->second) {
      it = retry_after_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<std::string> candidates;
  for (const auto& [job_id, record] : coordinator_.jobs()) {
    if (record.phase != sched::JobPhase::kPending) continue;
    if (outbound_.contains(job_id)) continue;
    const bool interactive =
        record.spec.type == workload::JobType::kInteractive;
    if (interactive ? !policy_.forward_interactive
                    : !policy_.forward_training) {
      continue;
    }
    if (env_.now() - record.submitted_at < policy_.forward_after) continue;
    if (retry_after_.contains(job_id)) continue;  // backoff still running
    // Only jobs the local campus cannot serve right now leave it: a node
    // that fits the job's shape means the local scheduler will get there
    // shortly and a WAN round-trip would only add latency.
    if (locally_placeable(record.spec)) continue;
    candidates.push_back(job_id);
  }
  for (const auto& job_id : candidates) initiate_forward(job_id);
}

void RegionGateway::initiate_forward(const std::string& job_id) {
  OutboundForward forward;
  forward.state = OutboundForward::State::kAwaitingRanking;
  forward.request_id = next_request_id_++;
  auto [it, inserted] = outbound_.emplace(job_id, std::move(forward));
  assert(inserted);

  const sched::JobRecord* record = coordinator_.job(job_id);
  assert(record != nullptr);
  RankingRequest request;
  request.origin_region = region_;
  request.reply_to = gateway_id_;
  request.request_id = it->second.request_id;
  request.gpu_count = record->spec.requirements.gpu_count;
  request.gpu_memory_gb = record->spec.requirements.gpu_memory_gb;
  request.min_compute_capability =
      record->spec.requirements.min_compute_capability;
  send(broker_id_, kRankingRequest, std::move(request), kDigestBytes);
  ++stats_.ranking_requests;
  arm_timeout(job_id, it->second.generation, policy_.forward_timeout);
}

void RegionGateway::handle_ranking_response(const RankingResponse& response) {
  // Rankings are few and in flight briefly; a linear match keeps the state
  // machine to one map.
  auto it = outbound_.begin();
  for (; it != outbound_.end(); ++it) {
    if (it->second.state == OutboundForward::State::kAwaitingRanking &&
        it->second.request_id == response.request_id) {
      break;
    }
  }
  if (it == outbound_.end()) return;  // timed out and cleaned up; ignore
  const std::string job_id = it->first;
  OutboundForward& forward = it->second;
  ++forward.generation;  // invalidate the pending timeout

  if (response.ranking.empty()) {
    // Nobody to ask.  The job never left the local queue; just back off.
    retry_after_[job_id] = env_.now() + policy_.forward_retry_backoff;
    ++stats_.forwards_aborted;
    outbound_.erase(it);
    return;
  }

  auto withdrawn = coordinator_.withdraw(job_id);
  if (!withdrawn.ok()) {
    // The job got dispatched (or cancelled) while the ranking was in
    // flight — the local campus won the race, nothing to forward.
    ++stats_.forwards_aborted;
    outbound_.erase(it);
    return;
  }
  forward.spec = std::move(withdrawn->spec);
  forward.start_progress = withdrawn->checkpointed_progress;
  // A chained forward (this region was itself hosting the job for another
  // campus) keeps the true origin on the wire and in provenance.
  if (auto hosted = remote_jobs_.find(job_id); hosted != remote_jobs_.end()) {
    forward.origin_region = hosted->second.origin_region;
    forward.origin_gateway = hosted->second.origin_gateway;
  } else {
    forward.origin_region = region_;
    forward.origin_gateway = gateway_id_;
  }
  if (forward.start_progress > 0) {
    auto bytes = store_.restore_bytes(job_id);
    forward.checkpoint_bytes = bytes.ok() ? *bytes : 0;
    // Progress without a restorable checkpoint chain cannot move campuses.
    if (forward.checkpoint_bytes == 0) forward.start_progress = 0;
  }
  forward.ranking = response.ranking;
  forward.withdrawn = true;
  try_next_region(job_id);
}

void RegionGateway::try_next_region(const std::string& job_id) {
  auto it = outbound_.find(job_id);
  assert(it != outbound_.end());
  OutboundForward& forward = it->second;
  if (forward.next_region >= forward.ranking.size() ||
      forward.attempts >= policy_.max_forward_attempts) {
    return_job_home(job_id);
    return;
  }
  const RegionScore& target = forward.ranking[forward.next_region++];
  ++forward.attempts;
  if (forward.attempts > 1) ++stats_.reroutes;
  forward.state = OutboundForward::State::kAwaitingReply;
  forward.awaiting_gateway = target.gateway_id;
  ++forward.generation;

  ForwardRequest request;
  request.origin_region = forward.origin_region;
  request.reply_to = gateway_id_;  // the forwarding hop drives the offer
  request.job = forward.spec;
  send(target.gateway_id, kForwardRequest, std::move(request), kControlBytes);
  ++stats_.forwards_attempted;
  arm_timeout(job_id, forward.generation, policy_.forward_timeout);
}

void RegionGateway::return_job_home(const std::string& job_id) {
  auto it = outbound_.find(job_id);
  assert(it != outbound_.end());
  OutboundForward& forward = it->second;
  // The checkpoint chain was never forgotten, so resubmitting with the
  // withdrawn progress restores locally once capacity frees up.
  auto resubmitted = coordinator_.submit(std::move(forward.spec),
                                         forward.start_progress);
  if (!resubmitted.is_ok()) {
    GPUNION_ELOG("gateway") << region_ << " could not return " << job_id
                            << " to the local queue: " << resubmitted;
  }
  ++stats_.forwards_returned;
  retry_after_[job_id] = env_.now() + policy_.forward_retry_backoff;
  outbound_.erase(it);
}

void RegionGateway::arm_timeout(const std::string& job_id,
                                std::uint64_t generation,
                                util::Duration delay) {
  env_.schedule_after(delay, [this, job_id, generation] {
    auto it = outbound_.find(job_id);
    if (it == outbound_.end() || it->second.generation != generation) return;
    switch (it->second.state) {
      case OutboundForward::State::kAwaitingRanking:
        // Broker unreachable; the job never left the local queue.
        ++stats_.forward_timeouts;
        retry_after_[job_id] = env_.now() + policy_.forward_retry_backoff;
        outbound_.erase(it);
        return;
      case OutboundForward::State::kAwaitingReply:
        // Unanswered offer: treat like a refusal.  A late accept is
        // ignored (awaiting_gateway moved on), and the target's
        // reservation expires on its own, so the job cannot run twice.
        ++stats_.forward_timeouts;
        ++it->second.generation;
        try_next_region(job_id);
        return;
      case OutboundForward::State::kAwaitingTransferAck:
        // The transfer (or its ack) was lost.  Resend, with backoff, for
        // as long as it takes: the target re-acks idempotently if the job
        // actually landed, and gateways — like coordinators — are campus
        // infrastructure that outlives node churn, so at-least-once
        // delivery here is what keeps a job from ever running twice
        // (giving up and resubmitting locally could duplicate a job whose
        // ack was merely delayed).
        ++stats_.transfer_retries;
        send_transfer(job_id);
        return;
    }
  });
}

void RegionGateway::handle_forward_accept(const ForwardAccept& accept) {
  auto it = outbound_.find(accept.job_id);
  if (it == outbound_.end() ||
      it->second.state != OutboundForward::State::kAwaitingReply ||
      it->second.awaiting_gateway != "gw-" + accept.region) {
    return;  // late accept from a target we already gave up on
  }
  OutboundForward& forward = it->second;
  forward.state = OutboundForward::State::kAwaitingTransferAck;
  forward.handoff_id = next_request_id_++;
  ++stats_.forwards_admitted;
  send_transfer(accept.job_id);
}

void RegionGateway::send_transfer(const std::string& job_id) {
  auto it = outbound_.find(job_id);
  assert(it != outbound_.end());
  OutboundForward& forward = it->second;
  ++forward.transfer_attempts;
  ++forward.generation;
  JobTransfer transfer;
  transfer.origin_region = forward.origin_region;
  transfer.origin_gateway = forward.origin_gateway;
  transfer.reply_to = gateway_id_;  // acks settle THIS hop's state machine
  transfer.attempt = forward.transfer_attempts;
  transfer.handoff_id = forward.handoff_id;
  transfer.job = forward.spec;  // keep the original for retries / returns
  transfer.start_progress = forward.start_progress;
  transfer.checkpoint_bytes = forward.checkpoint_bytes;
  // The shipment pays for its checkpoint payload on the WAN channel.
  send(forward.awaiting_gateway, kJobTransfer, std::move(transfer),
       kControlBytes + forward.checkpoint_bytes);
  // Exponential backoff (capped): a burst of shipments can back the FIFO
  // WAN channel up past one timeout, and re-shipping multi-GB payloads
  // into the very backlog that delayed them only feeds the spiral.
  const int exponent = std::min(3, forward.transfer_attempts - 1);
  arm_timeout(job_id, forward.generation,
              policy_.transfer_ack_timeout * static_cast<double>(1 << exponent));
}

void RegionGateway::handle_transfer_ack(const JobTransferAck& ack) {
  auto it = outbound_.find(ack.job_id);
  if (it == outbound_.end() ||
      it->second.state != OutboundForward::State::kAwaitingTransferAck ||
      it->second.awaiting_gateway != "gw-" + ack.region) {
    return;  // duplicate / late ack; already settled
  }
  OutboundForward& forward = it->second;
  if (!ack.accepted) {
    // Only the verdict on the NEWEST attempt counts: an older attempt's
    // refusal may be superseded by a retry already in flight, and taking
    // the job home while that retry can still land would run it twice.
    if (ack.attempt != forward.transfer_attempts) return;
    ++forward.generation;  // invalidate the pending resend
    // The target's reservation lapsed and its live re-admission said no
    // (or its coordinator refused the submit): take the job back.
    ++stats_.transfers_bounced;
    return_job_home(ack.job_id);
    return;
  }
  // An accept from ANY attempt settles the hand-off (the receiver is
  // idempotent across retries).
  ++forward.generation;  // invalidate the pending resend
  ++stats_.transfers_delivered;
  if (forward.checkpoint_bytes > 0) {
    ++stats_.checkpoints_shipped;
    stats_.checkpoint_bytes_shipped += forward.checkpoint_bytes;
  }
  database_.record_provenance(db::JobProvenance{
      ack.job_id, forward.origin_region, ack.region, env_.now()});
  if (forward.checkpoint_bytes > 0) {
    store_.forget(ack.job_id);  // the chain lives in the new region now
  }
  retry_after_.erase(ack.job_id);
  outbound_.erase(it);
}

void RegionGateway::handle_forward_refuse(const ForwardRefuse& refuse) {
  auto it = outbound_.find(refuse.job_id);
  if (it == outbound_.end() ||
      it->second.state != OutboundForward::State::kAwaitingReply ||
      it->second.awaiting_gateway != "gw-" + refuse.region) {
    return;
  }
  ++stats_.forwards_refused;
  ++it->second.generation;
  GPUNION_DLOG("gateway") << region_ << " forward of " << refuse.job_id
                          << " refused by " << refuse.region << " ("
                          << refuse.reason << ")";
  try_next_region(refuse.job_id);
}

void RegionGateway::handle_remote_outcome(const RemoteOutcome& outcome) {
  if (outcome.completed) {
    ++stats_.remote_completions;
  } else {
    ++stats_.remote_failures;
  }
}

// ---------------------------------------------------------------------------
// Inbound: admission of jobs forwarded here
// ---------------------------------------------------------------------------

std::string RegionGateway::admission_verdict(const workload::JobSpec& job) {
  if (!policy_.accept_remote) return "policy";
  if (remote_jobs_active() >= policy_.max_remote_jobs) return "admission-cap";
  // An id this coordinator already knows (live or archived) could not be
  // resubmitted here; refusing routes the job to a region that can.
  if (coordinator_.job(job.id) != nullptr) return "duplicate-id";
  // Admission is checked against the LIVE directory, never a digest: this
  // is the region's defence against the broker's stale gossip view.  The
  // shape check is per-node (locally_placeable), so a job no node here
  // could ever host is refused instead of starving in the queue.
  if (!locally_placeable(job)) return "capacity";
  if (policy_.min_free_gpus_reserve > 0) {
    sched::CapacitySummary summary =
        coordinator_.directory().capacity_summary();
    // A shareable job that can land in an already-open shared slot leaves
    // every free whole GPU untouched, so the reserve does not apply.
    const bool slot_bound = job.requirements.shareable &&
                            job.requirements.gpu_count == 1 &&
                            summary.free_shared_slots > 0;
    if (!slot_bound && summary.free_gpus - policy_.min_free_gpus_reserve <
                           job.requirements.gpu_count) {
      return "capacity";
    }
  }
  return "";
}

void RegionGateway::handle_forward_request(const ForwardRequest& request) {
  // Settle finished remote jobs first: between ticks, a completed guest
  // would otherwise hold its admission-cap slot and refuse a forward that
  // real capacity could take.
  sweep_remote_jobs();
  // A re-offer while the previous accept's reservation is still alive
  // (our accept was lost) refreshes the reservation and re-accepts — it
  // is the same admission, not a second one.
  if (auto held = pending_inbound_.find(request.job.id);
      held != pending_inbound_.end()) {
    held->second = env_.now() + policy_.reservation_ttl;
    send(request.reply_to, kForwardAccept,
         ForwardAccept{region_, request.job.id}, kDigestBytes);
    return;
  }
  const std::string verdict = admission_verdict(request.job);
  if (verdict.empty()) {
    pending_inbound_[request.job.id] = env_.now() + policy_.reservation_ttl;
    ++stats_.remote_admitted;
    send(request.reply_to, kForwardAccept,
         ForwardAccept{region_, request.job.id}, kDigestBytes);
    return;
  }
  if (verdict == "policy") {
    ++stats_.remote_refused_policy;
  } else if (verdict == "admission-cap") {
    ++stats_.remote_refused_cap;
  } else if (verdict == "duplicate-id") {
    ++stats_.remote_refused_duplicate;
  } else {
    ++stats_.remote_refused_capacity;
  }
  send(request.reply_to, kForwardRefuse,
       ForwardRefuse{region_, request.job.id, verdict}, kDigestBytes);
}

void RegionGateway::handle_job_transfer(const JobTransfer& transfer) {
  ++stats_.transfers_received;
  const std::string& job_id = transfer.job.id;
  // Idempotent: a retried duplicate of a hand-off we already processed —
  // even if the job has since completed here or chained onward and no
  // coordinator record remains — is re-acked, never re-admitted.  The
  // (sender, handoff_id) pair identifies the exact hand-off, so a
  // genuinely NEW hand-off of a job that came back and left again is not
  // mistaken for a duplicate.
  if (auto handled = handled_handoffs_.find(job_id);
      handled != handled_handoffs_.end() &&
      handled->second ==
          std::make_pair(transfer.reply_to, transfer.handoff_id)) {
    send(transfer.reply_to, kJobTransferAck,
         JobTransferAck{region_, job_id, transfer.attempt, true}, kDigestBytes);
    return;
  }
  // A coordinator-known id we did NOT take via this hand-off is refused:
  // acking someone else's id would silently drop the forwarded job.
  if (coordinator_.job(job_id) != nullptr) {
    send(transfer.reply_to, kJobTransferAck,
         JobTransferAck{region_, job_id, transfer.attempt, false}, kDigestBytes);
    return;
  }
  auto reservation = pending_inbound_.find(job_id);
  if (reservation != pending_inbound_.end()) {
    pending_inbound_.erase(reservation);
  } else {
    // The reservation lapsed (slow WAN) or the accept raced a timeout.
    // Re-run live admission so the cap and capacity policy still hold; a
    // refusal is safe because the sender keeps the job until our ack.
    // Sweep first — refusing an already-shipped multi-GB transfer over a
    // guest that finished since the last tick would waste the shipment.
    sweep_remote_jobs();
    if (!admission_verdict(transfer.job).empty()) {
      send(transfer.reply_to, kJobTransferAck,
           JobTransferAck{region_, job_id, transfer.attempt, false}, kDigestBytes);
      return;
    }
    ++stats_.transfers_unreserved;
  }
  const bool taken =
      admit_transfer(transfer.origin_gateway, transfer.origin_region,
                     transfer.job, transfer.start_progress);
  if (taken) {
    handled_handoffs_[job_id] = {transfer.reply_to, transfer.handoff_id};
  }
  send(transfer.reply_to, kJobTransferAck,
       JobTransferAck{region_, job_id, transfer.attempt, taken}, kDigestBytes);
}

bool RegionGateway::admit_transfer(const std::string& origin_gateway,
                                   const std::string& origin_region,
                                   const workload::JobSpec& job,
                                   double start_progress) {
  double progress = start_progress;
  if (progress > 0) {
    // Seed the local checkpoint store with the shipped state as a fresh
    // full snapshot, so the coordinator's normal dispatch path restores
    // from it exactly like a within-campus migration.
    auto written = store_.write(job.id, job.state.state_bytes,
                                /*dirty_fraction=*/1.0, progress, env_.now());
    if (!written.ok()) {
      GPUNION_WLOG("gateway")
          << region_ << " could not seed checkpoint for forwarded " << job.id
          << " (" << written.status() << "); restarting from scratch";
      progress = 0;
    }
  }
  auto submitted = coordinator_.submit(job, progress);
  if (!submitted.is_ok()) {
    // The refused ack sends the job back to its origin's queue.
    GPUNION_WLOG("gateway") << region_ << " could not submit forwarded "
                            << job.id << ": " << submitted;
    return false;
  }
  ++stats_.remote_jobs_taken;
  database_.record_provenance(
      db::JobProvenance{job.id, origin_region, region_, env_.now()});
  remote_jobs_[job.id] = RemoteJob{origin_gateway, origin_region, env_.now()};
  if (progress > 0) ++stats_.cross_campus_migrations_in;
  return true;
}

void RegionGateway::sweep_remote_jobs() {
  for (auto it = pending_inbound_.begin(); it != pending_inbound_.end();) {
    if (env_.now() >= it->second) {
      ++stats_.reservations_expired;
      it = pending_inbound_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = remote_jobs_.begin(); it != remote_jobs_.end();) {
    const std::string& job_id = it->first;
    const sched::JobRecord* record = coordinator_.job(job_id);
    if (record == nullptr) {
      if (outbound_.contains(job_id)) {
        // Withdrawn for a chained forward that is still in flight; if it
        // fails, return_job_home resubmits here and we are hosting again.
        ++it;
        continue;
      }
      // The job left this region for good (chained forward landed
      // elsewhere): no longer ours to report on.
      it = remote_jobs_.erase(it);
      continue;
    }
    if (!sched::job_phase_terminal(record->phase)) {
      ++it;
      continue;
    }
    RemoteOutcome outcome;
    outcome.region = region_;
    outcome.job_id = job_id;
    outcome.completed = record->phase == sched::JobPhase::kCompleted;
    send(it->second.origin_gateway, kRemoteOutcome, std::move(outcome),
         kDigestBytes);
    it = remote_jobs_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

void RegionGateway::handle_message(net::Message&& msg) {
  switch (msg.kind) {
    case kRankingResponse:
      handle_ranking_response(
          std::any_cast<const RankingResponse&>(msg.payload));
      break;
    case kForwardRequest:
      handle_forward_request(
          std::any_cast<const ForwardRequest&>(msg.payload));
      break;
    case kForwardAccept:
      handle_forward_accept(std::any_cast<const ForwardAccept&>(msg.payload));
      break;
    case kForwardRefuse:
      handle_forward_refuse(std::any_cast<const ForwardRefuse&>(msg.payload));
      break;
    case kJobTransfer:
      handle_job_transfer(std::any_cast<const JobTransfer&>(msg.payload));
      break;
    case kJobTransferAck:
      handle_transfer_ack(std::any_cast<const JobTransferAck&>(msg.payload));
      break;
    case kRemoteOutcome:
      handle_remote_outcome(std::any_cast<const RemoteOutcome&>(msg.payload));
      break;
    default:
      GPUNION_WLOG("gateway") << gateway_id_ << " unexpected message kind "
                              << msg.kind;
  }
}

void RegionGateway::send(const std::string& to, int kind, std::any payload,
                         std::uint64_t bytes) {
  net::Message msg;
  msg.from = gateway_id_;
  msg.to = to;
  msg.kind = kind;
  msg.traffic_class = net::TrafficClass::kFederation;
  msg.size_bytes = bytes;
  msg.payload = std::move(payload);
  (void)wan_.send(std::move(msg));
}

}  // namespace gpunion::federation
