// Sharded event queue for the parallel execution core.
//
// The single EventQueue heap becomes N independently locked shards plus one
// "exclusive" shard.  Every actor lane maps onto exactly one shard (lane %
// shards), so a shard is the mailbox of the worker thread that owns it:
// pushes and cancels lock only that shard's mutex (finely locked MPSC), and
// during a parallel window each shard is drained by its single owning
// worker in (time, insertion-seq) order.
//
// Each shard reuses the legacy EventQueue verbatim — heap + O(1) tombstone
// cancellation + compaction — so the deterministic execution mode (one
// shard, every lane folded onto it) is the pre-refactor engine by
// construction: the same (time, insertion order) global fire order the
// invariant harnesses replay with GPUNION_INVARIANT_SEED.
//
// EventIds encode the owning shard in their top 16 bits so cancel() routes
// without any global id map (no shared contention point).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "sim/event_queue.h"
#include "util/time.h"

namespace gpunion::sim {

class ShardedEventQueue {
 public:
  /// `shards` >= 1 ordinary shards, plus the internal exclusive shard.
  explicit ShardedEventQueue(std::size_t shards);

  ShardedEventQueue(const ShardedEventQueue&) = delete;
  ShardedEventQueue& operator=(const ShardedEventQueue&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// Enqueues onto `shard`.  Thread-safe; locks only that shard.
  EventId push(std::size_t shard, util::SimTime t, EventQueue::Callback fn);

  /// Enqueues onto the exclusive shard (events that must run alone, with
  /// every worker quiesced — cross-actor platform interventions).
  EventId push_exclusive(util::SimTime t, EventQueue::Callback fn);

  /// Cancels a pending event, routing by the shard encoded in the id.
  bool cancel(EventId id);

  // --- Aggregated introspection (locks each shard briefly) ------------------
  bool empty() const;
  std::size_t live_size() const;
  std::size_t tombstones() const;
  std::uint64_t compactions() const;
  /// Earliest pending time across every shard, exclusive included.
  util::SimTime next_time() const;

  // --- Executor-facing, per-shard -------------------------------------------
  /// Live events pending on ONE shard (profiler queue-depth sampling).
  std::size_t shard_live_size(std::size_t shard) const;
  util::SimTime shard_next_time(std::size_t shard) const;
  util::SimTime exclusive_next_time() const;
  /// Pops the shard's earliest event iff its time < `bound`.  The owning
  /// worker calls this in a loop to drain its window slice.
  bool shard_try_pop(std::size_t shard, util::SimTime bound,
                     EventQueue::Event* out);
  bool exclusive_try_pop(util::SimTime bound, EventQueue::Event* out);

 private:
  struct Shard {
    mutable std::mutex mu;
    EventQueue q;
  };

  static EventId encode(std::size_t shard_plus_one, EventId local) {
    return (static_cast<EventId>(shard_plus_one) << 48) | local;
  }

  Shard& shard_for_id(EventId id, EventId* local);

  // deque: Shard holds a mutex (immovable) and the set is fixed at
  // construction; deque never relocates elements.
  std::deque<Shard> shards_;
  Shard exclusive_;
};

}  // namespace gpunion::sim
