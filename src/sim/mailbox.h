// MPSC actor mailbox.
//
// The parallel execution core gives every actor (DB writer shard, region
// gateway, provider agent) a mailbox that any thread may post to and exactly
// one worker drains.  Posts are finely locked (one mutex per mailbox, held
// only for a queue append / swap), and the drain side takes the whole batch
// in one swap so a busy producer can never livelock the consumer.
//
// The sim event lanes use the same discipline through ShardedEventQueue;
// this standalone mailbox is for actors that run on real (non-sim) threads,
// e.g. the per-shard database commit threads in db::ShardExecutor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace gpunion::sim {

template <typename T>
class Mailbox {
 public:
  /// Appends one message.  Callable from any thread.
  void post(T message) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(std::move(message));
      ++posted_;
    }
    cv_.notify_one();
  }

  /// Takes every pending message in one swap (FIFO order preserved).
  /// Returns an empty vector when the mailbox is empty.
  std::vector<T> drain() {
    std::vector<T> out;
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(pending_);
    return out;
  }

  /// Blocks until at least one message is pending or `stop` was signalled;
  /// then drains.  Returns empty only after stop().
  std::vector<T> drain_blocking() {
    std::vector<T> out;
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !pending_.empty() || stopped_; });
    out.swap(pending_);
    return out;
  }

  /// Wakes every blocked drain_blocking() caller; subsequent calls return
  /// immediately once the queue is empty.
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

  /// Messages ever posted (monotone; drain does not reset it).
  std::size_t posted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return posted_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> pending_;
  std::size_t posted_ = 0;
  bool stopped_ = false;
};

}  // namespace gpunion::sim
