// Unified fault injection for crash-recovery experiments.
//
// A registry of *named* crash points: components (platform, federation)
// register callbacks under well-known names, and harnesses trigger them by
// name at chosen simulation times.  Triggers are scheduled as EXCLUSIVE
// events — in kParallel every worker is quiesced while a fault runs, so a
// crash may touch any actor's state; in kDeterministic they are ordinary
// events in the legacy global order, which keeps every
// GPUNION_INVARIANT_SEED harness bit-replayable with crashes enabled.
//
// sim/ cannot depend on gpunion/ (layering), so the injector knows nothing
// about coordinators or gateways: it is a generic named-callback registry
// plus scheduling and accounting.  The platform layer registers the
// concrete crash actions (see gpunion::Platform::register_crash_points).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/environment.h"
#include "util/time.h"

namespace gpunion::sim {

/// Well-known crash-point names (the PR's crash-point taxonomy).  The
/// platform registers these; harnesses iterate kAllCrashPoints to exercise
/// every one.  Names are registry keys, nothing more — components may
/// register additional points.
inline constexpr std::string_view kCrashPreAck = "crash.pre_ack";
inline constexpr std::string_view kCrashPostAckPreFlush =
    "crash.post_ack_pre_flush";
inline constexpr std::string_view kCrashMidGroupCommit =
    "crash.mid_group_commit";
inline constexpr std::string_view kCrashMidForward = "crash.mid_forward";

class FaultInjector {
 public:
  using Fault = std::function<void()>;

  explicit FaultInjector(Environment& env) : env_(env) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers (or replaces) the action behind a named fault.
  void register_fault(std::string name, Fault action) {
    faults_[std::move(name)] = std::move(action);
  }

  bool has(const std::string& name) const { return faults_.contains(name); }

  /// Registered fault names, sorted (deterministic iteration for harnesses).
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(faults_.size());
    for (const auto& [name, action] : faults_) out.push_back(name);
    return out;
  }

  /// Fires a registered fault immediately (caller already holds an
  /// appropriate execution context, e.g. inside an exclusive event).
  /// Returns false for unknown names.
  bool inject_now(const std::string& name);

  /// Schedules a fault as an exclusive event at / after the given time.
  /// Unknown-at-fire-time names are counted in misfires() and skipped.
  void inject_at(util::SimTime t, std::string name);
  void inject_after(util::Duration delay, std::string name);

  /// Times a named fault has fired.
  std::uint64_t fired(const std::string& name) const {
    auto it = fired_.find(name);
    return it == fired_.end() ? 0 : it->second;
  }
  std::uint64_t total_fired() const { return total_fired_; }
  std::uint64_t misfires() const { return misfires_; }

 private:
  Environment& env_;
  std::map<std::string, Fault> faults_;
  std::map<std::string, std::uint64_t> fired_;
  std::uint64_t total_fired_ = 0;
  std::uint64_t misfires_ = 0;
};

}  // namespace gpunion::sim
