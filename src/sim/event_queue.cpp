#include "sim/event_queue.h"

#include <cassert>

namespace gpunion::sim {

EventId EventQueue::push(util::SimTime t, Callback fn) {
  assert(fn && "EventQueue::push requires a callable");
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped in skim().
  return callbacks_.erase(id) > 0;
}

void EventQueue::skim() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

util::SimTime EventQueue::next_time() const {
  skim();
  return heap_.empty() ? util::kNever : heap_.top().time;
}

EventQueue::Event EventQueue::pop() {
  skim();
  assert(!heap_.empty() && "EventQueue::pop on empty queue");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  assert(it != callbacks_.end());
  Event event{entry.time, entry.id, std::move(it->second)};
  callbacks_.erase(it);
  return event;
}

}  // namespace gpunion::sim
