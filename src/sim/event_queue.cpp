#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace gpunion::sim {

namespace {
// Below this size a compaction saves too little to bother.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

EventId EventQueue::push(util::SimTime t, Callback fn) {
  assert(fn && "EventQueue::push requires a callable");
  const EventId id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{t, seq, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.emplace(id, Live{std::move(fn), t, seq});
  return id;
}

bool EventQueue::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped in skim() —
  // unless tombstones now dominate, in which case the heap is rebuilt from
  // the live map (amortized O(1) per cancel).
  if (live_.erase(id) == 0) return false;
  if (heap_.size() >= kCompactionFloor &&
      heap_.size() - live_.size() > live_.size()) {
    compact();
  }
  return true;
}

void EventQueue::compact() {
  heap_.clear();
  heap_.reserve(live_.size());
  for (const auto& [id, event] : live_) {
    heap_.push_back(Entry{event.time, event.seq, id});
  }
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  ++compactions_;
}

void EventQueue::skim() const {
  while (!heap_.empty() && !live_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

util::SimTime EventQueue::next_time() const {
  skim();
  return heap_.empty() ? util::kNever : heap_.front().time;
}

EventQueue::Event EventQueue::pop() {
  skim();
  assert(!heap_.empty() && "EventQueue::pop on empty queue");
  const Entry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
  auto it = live_.find(entry.id);
  assert(it != live_.end());
  Event event{entry.time, entry.id, std::move(it->second.fn)};
  live_.erase(it);
  return event;
}

}  // namespace gpunion::sim
