#include "sim/sharded_event_queue.h"

#include <algorithm>
#include <cassert>

namespace gpunion::sim {

namespace {
constexpr EventId kLocalMask = (EventId{1} << 48) - 1;
}  // namespace

ShardedEventQueue::ShardedEventQueue(std::size_t shards) {
  assert(shards >= 1);
  shards_.resize(std::max<std::size_t>(1, shards));
}

EventId ShardedEventQueue::push(std::size_t shard, util::SimTime t,
                                EventQueue::Callback fn) {
  assert(shard < shards_.size());
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return encode(shard + 1, s.q.push(t, std::move(fn)));
}

EventId ShardedEventQueue::push_exclusive(util::SimTime t,
                                          EventQueue::Callback fn) {
  std::lock_guard<std::mutex> lock(exclusive_.mu);
  return encode(shards_.size() + 1, exclusive_.q.push(t, std::move(fn)));
}

ShardedEventQueue::Shard& ShardedEventQueue::shard_for_id(EventId id,
                                                          EventId* local) {
  *local = id & kLocalMask;
  const std::size_t shard = static_cast<std::size_t>(id >> 48) - 1;
  return shard < shards_.size() ? shards_[shard] : exclusive_;
}

bool ShardedEventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || (id >> 48) == 0) return false;
  EventId local = kInvalidEvent;
  Shard& s = shard_for_id(id, &local);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.q.cancel(local);
}

bool ShardedEventQueue::empty() const { return live_size() == 0; }

std::size_t ShardedEventQueue::live_size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.q.live_size();
  }
  std::lock_guard<std::mutex> lock(exclusive_.mu);
  return n + exclusive_.q.live_size();
}

std::size_t ShardedEventQueue::tombstones() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.q.tombstones();
  }
  std::lock_guard<std::mutex> lock(exclusive_.mu);
  return n + exclusive_.q.tombstones();
}

std::uint64_t ShardedEventQueue::compactions() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.q.compactions();
  }
  std::lock_guard<std::mutex> lock(exclusive_.mu);
  return n + exclusive_.q.compactions();
}

util::SimTime ShardedEventQueue::next_time() const {
  util::SimTime t = exclusive_next_time();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    t = std::min(t, shard_next_time(i));
  }
  return t;
}

std::size_t ShardedEventQueue::shard_live_size(std::size_t shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.q.live_size();
}

util::SimTime ShardedEventQueue::shard_next_time(std::size_t shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.q.next_time();
}

util::SimTime ShardedEventQueue::exclusive_next_time() const {
  std::lock_guard<std::mutex> lock(exclusive_.mu);
  return exclusive_.q.next_time();
}

bool ShardedEventQueue::shard_try_pop(std::size_t shard, util::SimTime bound,
                                      EventQueue::Event* out) {
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.q.empty() || s.q.next_time() >= bound) return false;
  *out = s.q.pop();
  out->id = encode(shard + 1, out->id);
  return true;
}

bool ShardedEventQueue::exclusive_try_pop(util::SimTime bound,
                                          EventQueue::Event* out) {
  std::lock_guard<std::mutex> lock(exclusive_.mu);
  if (exclusive_.q.empty() || exclusive_.q.next_time() >= bound) return false;
  *out = exclusive_.q.pop();
  out->id = encode(shards_.size() + 1, out->id);
  return true;
}

}  // namespace gpunion::sim
