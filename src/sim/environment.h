// Discrete-event simulation environment.
//
// Every GPUnion component (agents, coordinator, network, workloads) receives
// an Environment& and uses it for *all* time, scheduling and randomness.
// Running the same configuration with the same seed therefore reproduces an
// experiment event-for-event, which EXPERIMENTS.md relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "sim/event_queue.h"
#include "util/rng.h"
#include "util/time.h"

namespace gpunion::sim {

class Environment {
 public:
  explicit Environment(std::uint64_t seed = 1);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Current simulation time (seconds since start).
  util::SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  EventId schedule_at(util::SimTime t, EventQueue::Callback fn);

  /// Schedules `fn` after a delay (>= 0).
  EventId schedule_after(util::Duration delay, EventQueue::Callback fn);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue is empty or `limit` events fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(util::SimTime t);

  /// Fires the single earliest event; false when the queue is empty.
  bool step();

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  std::size_t processed_events() const { return processed_; }
  /// Kernel queue introspection (live/tombstone/compaction stats).
  const EventQueue& event_queue() const { return queue_; }

  /// Derives a named, independent RNG stream from the experiment seed.
  util::Rng fork_rng(std::string_view label) const {
    return root_rng_.fork(label);
  }

  std::uint64_t seed() const { return root_rng_.seed(); }

 private:
  util::SimTime now_ = 0.0;
  EventQueue queue_;
  util::Rng root_rng_;
  std::size_t processed_ = 0;
};

/// Repeating timer helper: reschedules itself every `period` until stopped.
/// Components use this for heartbeats, telemetry and checkpoint ticks.
class PeriodicTimer {
 public:
  PeriodicTimer(Environment& env, util::Duration period,
                std::function<void()> on_tick);
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; the first tick fires one period from now (or after
  /// `initial_delay` when given).
  void start();
  void start_after(util::Duration initial_delay);

  /// Disarms the timer.  Safe to call repeatedly or from within on_tick.
  void stop();

  bool running() const { return event_ != kInvalidEvent; }
  util::Duration period() const { return period_; }

  /// Changes the period; takes effect at the next (re)start or tick.
  void set_period(util::Duration period) { period_ = period; }

 private:
  void tick();

  Environment& env_;
  util::Duration period_;
  std::function<void()> on_tick_;
  EventId event_ = kInvalidEvent;
};

}  // namespace gpunion::sim
