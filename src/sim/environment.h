// Discrete-event simulation environment.
//
// Every GPUnion component (agents, coordinator, network, workloads) receives
// an Environment& and uses it for *all* time, scheduling and randomness.
// Running the same configuration with the same seed therefore reproduces an
// experiment event-for-event, which EXPERIMENTS.md relies on.
//
// Two execution modes sit behind this one API:
//
//  - kDeterministic (default): one event shard, one thread, the exact
//    pre-refactor (time, insertion-order) global fire order.  All invariant
//    harnesses (GPUNION_INVARIANT_SEED) replay bit-identically here.
//  - kParallel: `worker_threads` real threads.  Each actor lane maps onto a
//    queue shard owned by one worker; time advances in conservative windows
//    [t_min, t_min + lookahead) so no worker runs ahead of the global safe
//    time (classic conservative PDES).  Events whose timestamps differ by
//    less than the lookahead may fire in a different relative order than in
//    kDeterministic — causality is preserved, tie order is not.
//
// Memory model: within a window, a lane's events run on one thread in time
// order (happens-before along the lane).  Window barriers give a total
// happens-before edge between windows, and exclusive events run with every
// worker quiesced, so they may touch any actor's state.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/sharded_event_queue.h"
#include "util/rng.h"
#include "util/time.h"

namespace gpunion::sim {

/// Identifies an actor's event lane.  Lanes created by register_lane() map
/// onto queue shards (lane % workers in kParallel; all lanes fold onto one
/// shard in kDeterministic, which is what makes that mode bit-reproducible).
using LaneId = std::uint32_t;

/// The default lane: platform, coordinator, DB and everything that has not
/// asked for its own lane.
inline constexpr LaneId kMainLane = 0;

enum class ExecutionMode {
  kDeterministic,
  kParallel,
};

struct EnvConfig {
  ExecutionMode mode = ExecutionMode::kDeterministic;
  /// Worker threads (and queue shards) in kParallel; ignored in
  /// kDeterministic, which always runs single-threaded on one shard.
  unsigned worker_threads = 1;
  /// Conservative window width (sim seconds).  Safe when <= the minimum
  /// cross-actor notification delay; defaults to SimNetworkConfig's 0.2 ms
  /// base link latency.  Cross-lane events scheduled closer than this are
  /// deferred to the window boundary (counted as causality_clamps).
  double lookahead = 0.0002;
  /// Collect the actor-lane profiler (lane_profile()): per-shard busy CPU
  /// time, per-window critical-path attribution, barrier idle time,
  /// queue-depth high-water marks and exclusive-event stall time.  Off by
  /// default — sampling takes shard locks and reads the CPU clock per
  /// event/window, so it is not free.
  bool profile_lanes = false;
};

/// Aggregated queue introspection (live/tombstone/compaction stats).
struct QueueStats {
  std::size_t live = 0;
  std::size_t tombstones = 0;
  std::uint64_t compactions = 0;
};

/// Counters from the parallel executor (all zero in kDeterministic).
struct ParallelStats {
  std::uint64_t windows = 0;
  std::uint64_t exclusive_events = 0;
  std::uint64_t causality_clamps = 0;
  /// Sum over windows of the busiest worker's CPU time: the wall clock an
  /// ideally scheduled machine with >= worker_threads cores would need.
  double ideal_wall_s = 0.0;
  /// Total CPU seconds spent inside event callbacks, across all workers.
  double total_busy_s = 0.0;
  /// Events fired per worker (size == worker_threads).
  std::vector<std::uint64_t> worker_events;
};

/// One profiled queue shard: the mailbox of one worker in kParallel, the
/// single global shard in kDeterministic, plus the actor lanes folding onto
/// it (lane % shards).
struct LaneProfile {
  std::size_t shard = 0;
  std::vector<std::string> lanes;  // labels of lanes mapped onto this shard
  std::uint64_t events = 0;        // events fired on this shard
  double busy_s = 0.0;             // CPU seconds inside its callbacks
  /// CPU seconds this shard's worker sat at window join barriers while a
  /// busier shard finished its slice (kParallel only).
  double idle_s = 0.0;
  /// Windows where this shard was the busiest — the critical path: its
  /// callbacks bounded that window's wall clock.
  std::uint64_t critical_windows = 0;
  /// Busy CPU seconds accumulated while on the critical path.
  double critical_busy_s = 0.0;
  /// High-water mark of live events pending on this shard at fire time.
  std::size_t max_queue_depth = 0;
};

/// Actor-runtime profile (collected when EnvConfig::profile_lanes is set).
struct ProfilerReport {
  bool enabled = false;
  std::uint64_t windows = 0;  // profiled conservative windows (kParallel)
  std::uint64_t exclusive_events = 0;
  /// CPU seconds spent inside exclusive events — time every worker sat
  /// quiesced (multiply by worker count for stalled worker-seconds).
  double exclusive_stall_s = 0.0;
  std::vector<LaneProfile> shards;
};

class Environment {
 public:
  explicit Environment(std::uint64_t seed = 1, EnvConfig config = {});
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  ExecutionMode mode() const { return config_.mode; }
  std::size_t worker_count() const { return workers_.size(); }

  /// Registers an actor lane.  The label is for diagnostics only; the
  /// mapping onto shards is `lane % shards`.
  LaneId register_lane(std::string_view label);
  std::size_t lane_count() const;

  /// Current simulation time (seconds since start).  Inside an event
  /// callback this is the firing event's timestamp, on any thread.
  util::SimTime now() const;

  /// Schedules `fn` at absolute time `t` (>= now) on the main lane.
  EventId schedule_at(util::SimTime t, EventQueue::Callback fn);

  /// Schedules `fn` after a delay (>= 0) on the main lane.
  EventId schedule_after(util::Duration delay, EventQueue::Callback fn);

  /// Lane-addressed variants: the event fires on the worker owning `lane`.
  EventId schedule_at_on(LaneId lane, util::SimTime t, EventQueue::Callback fn);
  EventId schedule_after_on(LaneId lane, util::Duration delay,
                            EventQueue::Callback fn);

  /// Exclusive events run alone, with every worker quiesced — use for
  /// cross-actor interventions (interruption injection, global metric
  /// scrapes).  In kDeterministic they are ordinary events, keeping the
  /// legacy global order.
  EventId schedule_exclusive_at(util::SimTime t, EventQueue::Callback fn);
  EventId schedule_exclusive_after(util::Duration delay,
                                   EventQueue::Callback fn);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id) { return queue_->cancel(id); }

  /// Runs events until the queue is empty or `limit` events fired.
  /// Returns the number of events processed.  In kParallel the limit is
  /// checked at window granularity (may overshoot by one window).
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Runs events with time <= t, then advances the clock to exactly t.
  std::size_t run_until(util::SimTime t);

  /// Fires the single earliest event; false when the queue is empty.
  /// Serial API: never call concurrently with run()/run_until().
  bool step();

  bool idle() const { return queue_->empty(); }
  std::size_t pending_events() const { return queue_->live_size(); }
  std::size_t processed_events() const { return processed_; }
  QueueStats queue_stats() const;
  const ParallelStats& parallel_stats() const { return parallel_stats_; }

  /// The actor-lane profile accumulated so far.  All-zero (enabled=false)
  /// unless EnvConfig::profile_lanes was set.  Call between runs — never
  /// concurrently with run()/run_until().
  ProfilerReport lane_profile() const;

  /// Observer invoked as (time, event-id) immediately before each event
  /// fires; used by determinism regression tests to capture fire traces.
  /// In kParallel it runs on worker threads and must be thread-safe.
  void set_fire_observer(std::function<void(util::SimTime, EventId)> observer) {
    fire_observer_ = std::move(observer);
  }

  /// Derives a named, independent RNG stream from the experiment seed.
  util::Rng fork_rng(std::string_view label) const {
    return root_rng_.fork(label);
  }

  std::uint64_t seed() const { return root_rng_.seed(); }

 private:
  struct WorkerState {
    std::uint64_t events = 0;
    double busy_s = 0.0;
    /// Busy CPU seconds of the most recent window (critical-path
    /// attribution in run_window).
    double last_window_busy = 0.0;
  };

  /// Per-shard profiler accumulators (EnvConfig::profile_lanes).  Written
  /// by workers under run_mu_ (and by the single thread in kDeterministic);
  /// read by lane_profile() between runs.
  struct ShardProfile {
    std::uint64_t events = 0;
    double busy_s = 0.0;
    double idle_s = 0.0;
    std::uint64_t critical_windows = 0;
    double critical_busy_s = 0.0;
    std::size_t max_queue_depth = 0;
  };

  bool parallel() const { return config_.mode == ExecutionMode::kParallel; }
  std::size_t shard_for_lane(LaneId lane) const {
    return static_cast<std::size_t>(lane) % queue_->shard_count();
  }

  EventId post(std::size_t shard, util::SimTime t, EventQueue::Callback fn);
  EventId post_exclusive(util::SimTime t, EventQueue::Callback fn);

  bool step_deterministic();
  bool step_parallel();
  void fire_on_caller(EventQueue::Event&& event);

  /// Core parallel loop: fires events with time < `limit`, stopping early
  /// once `max_events` have fired.  Returns the count.
  std::size_t run_parallel(double limit, std::size_t max_events);
  /// One conservative window: wakes every worker with `bound`, waits for
  /// the join barrier, returns events fired.
  std::size_t run_window(double bound);
  void worker_main(std::size_t index);

  EnvConfig config_;
  std::unique_ptr<ShardedEventQueue> queue_;
  util::Rng root_rng_;
  std::atomic<double> now_{0.0};
  std::size_t processed_ = 0;
  std::function<void(util::SimTime, EventId)> fire_observer_;

  mutable std::mutex lanes_mu_;
  std::vector<std::string> lane_labels_;

  // --- kParallel worker pool -------------------------------------------------
  std::vector<std::thread> workers_;
  std::mutex run_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  double window_bound_ = 0.0;
  std::size_t done_count_ = 0;
  std::size_t window_events_ = 0;
  double window_max_busy_ = 0.0;
  double window_max_time_ = 0.0;
  std::vector<WorkerState> worker_states_;
  std::atomic<std::uint64_t> causality_clamps_{0};
  ParallelStats parallel_stats_;
  std::vector<ShardProfile> profile_;
  std::uint64_t profiled_windows_ = 0;
  double exclusive_stall_s_ = 0.0;
};

/// Repeating timer helper: reschedules itself every `period` until stopped.
/// Components use this for heartbeats, telemetry and checkpoint ticks.
class PeriodicTimer {
 public:
  PeriodicTimer(Environment& env, util::Duration period,
                std::function<void()> on_tick);
  /// Lane-addressed timer: ticks fire on `lane`'s worker.  With
  /// `exclusive`, ticks run as exclusive events (workers quiesced).
  PeriodicTimer(Environment& env, util::Duration period,
                std::function<void()> on_tick, LaneId lane,
                bool exclusive = false);
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arms the timer; the first tick fires one period from now (or after
  /// `initial_delay` when given).
  void start();
  void start_after(util::Duration initial_delay);

  /// Disarms the timer.  Safe to call repeatedly or from within on_tick.
  void stop();

  bool running() const { return event_ != kInvalidEvent; }
  util::Duration period() const { return period_; }

  /// Changes the period; takes effect at the next (re)start or tick.
  void set_period(util::Duration period) { period_ = period; }

 private:
  void tick();
  EventId arm(util::Duration delay);

  Environment& env_;
  util::Duration period_;
  std::function<void()> on_tick_;
  LaneId lane_ = kMainLane;
  bool exclusive_ = false;
  EventId event_ = kInvalidEvent;
};

}  // namespace gpunion::sim
