#include "sim/environment.h"

#include <time.h>

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gpunion::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-thread execution context.  Set only on worker threads in kParallel;
// the coordinator (main) thread and kDeterministic mode publish time through
// Environment::now_ instead, which is safe because workers are quiesced
// whenever anything else runs events.
struct ThreadContext {
  const void* env = nullptr;
  util::SimTime now = 0.0;
  double window_bound = kInf;
  int shard = -1;
};
thread_local ThreadContext tls_ctx;

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

Environment::Environment(std::uint64_t seed, EnvConfig config)
    : config_(config), root_rng_(seed) {
  lane_labels_.push_back("main");
  if (parallel()) {
    config_.worker_threads = std::max(1u, config_.worker_threads);
    if (!(config_.lookahead > 0.0)) config_.lookahead = 1e-9;
    queue_ = std::make_unique<ShardedEventQueue>(config_.worker_threads);
    worker_states_.resize(config_.worker_threads);
    parallel_stats_.worker_events.assign(config_.worker_threads, 0);
    workers_.reserve(config_.worker_threads);
    for (unsigned i = 0; i < config_.worker_threads; ++i) {
      workers_.emplace_back([this, i] { worker_main(i); });
    }
  } else {
    // One shard: every lane folds onto it, so the global fire order is the
    // legacy (time, insertion order) — bit-identical seed replay.
    queue_ = std::make_unique<ShardedEventQueue>(1);
  }
  profile_.resize(queue_->shard_count());
}

Environment::~Environment() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(run_mu_);
      shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }
}

LaneId Environment::register_lane(std::string_view label) {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  lane_labels_.emplace_back(label);
  return static_cast<LaneId>(lane_labels_.size() - 1);
}

std::size_t Environment::lane_count() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  return lane_labels_.size();
}

util::SimTime Environment::now() const {
  if (tls_ctx.env == this) return tls_ctx.now;
  return now_.load(std::memory_order_relaxed);
}

EventId Environment::post(std::size_t shard, util::SimTime t,
                          EventQueue::Callback fn) {
  assert(t >= now() && "cannot schedule into the past");
  if (parallel() && tls_ctx.env == this && t < tls_ctx.window_bound &&
      static_cast<int>(shard) != tls_ctx.shard) {
    // Cross-lane event inside the current conservative window: the target
    // worker may already have drained past `t`, so defer to the boundary.
    // Network-mediated events never land here (path latency >= lookahead);
    // only direct cross-lane schedule_*_on calls with sub-lookahead delays.
    t = tls_ctx.window_bound;
    causality_clamps_.fetch_add(1, std::memory_order_relaxed);
  }
  return queue_->push(shard, t, std::move(fn));
}

EventId Environment::post_exclusive(util::SimTime t, EventQueue::Callback fn) {
  assert(t >= now() && "cannot schedule into the past");
  if (!parallel()) return queue_->push(0, t, std::move(fn));
  if (tls_ctx.env == this && t < tls_ctx.window_bound) {
    t = tls_ctx.window_bound;
    causality_clamps_.fetch_add(1, std::memory_order_relaxed);
  }
  return queue_->push_exclusive(t, std::move(fn));
}

EventId Environment::schedule_at(util::SimTime t, EventQueue::Callback fn) {
  return post(shard_for_lane(kMainLane), t, std::move(fn));
}

EventId Environment::schedule_after(util::Duration delay,
                                    EventQueue::Callback fn) {
  assert(delay >= 0 && "negative delay");
  return post(shard_for_lane(kMainLane), now() + delay, std::move(fn));
}

EventId Environment::schedule_at_on(LaneId lane, util::SimTime t,
                                    EventQueue::Callback fn) {
  return post(shard_for_lane(lane), t, std::move(fn));
}

EventId Environment::schedule_after_on(LaneId lane, util::Duration delay,
                                       EventQueue::Callback fn) {
  assert(delay >= 0 && "negative delay");
  return post(shard_for_lane(lane), now() + delay, std::move(fn));
}

EventId Environment::schedule_exclusive_at(util::SimTime t,
                                           EventQueue::Callback fn) {
  return post_exclusive(t, std::move(fn));
}

EventId Environment::schedule_exclusive_after(util::Duration delay,
                                              EventQueue::Callback fn) {
  assert(delay >= 0 && "negative delay");
  return post_exclusive(now() + delay, std::move(fn));
}

std::size_t Environment::run(std::size_t limit) {
  // kNever (not +inf) as the bound: an empty shard reports kNever, so the
  // loop in run_parallel terminates once nothing real is pending.
  if (parallel()) return run_parallel(util::kNever, limit);
  std::size_t n = 0;
  while (n < limit && step_deterministic()) ++n;
  return n;
}

std::size_t Environment::run_until(util::SimTime t) {
  assert(t >= now());
  std::size_t n = 0;
  if (parallel()) {
    n = run_parallel(std::nextafter(t, kInf), SIZE_MAX);
  } else {
    while (queue_->shard_next_time(0) <= t) {
      step_deterministic();
      ++n;
    }
  }
  now_.store(t, std::memory_order_relaxed);
  return n;
}

bool Environment::step() {
  return parallel() ? step_parallel() : step_deterministic();
}

bool Environment::step_deterministic() {
  EventQueue::Event event;
  if (!queue_->shard_try_pop(0, kInf, &event)) return false;
  fire_on_caller(std::move(event));
  return true;
}

bool Environment::step_parallel() {
  const double tex = queue_->exclusive_next_time();
  std::size_t best = SIZE_MAX;
  double tmin = tex;
  for (std::size_t i = 0; i < queue_->shard_count(); ++i) {
    const double t = queue_->shard_next_time(i);
    if (t < tmin) {
      tmin = t;
      best = i;
    }
  }
  if (tmin == util::kNever) return false;
  EventQueue::Event event;
  const double bound = std::nextafter(tmin, kInf);
  const bool popped = best == SIZE_MAX
                          ? queue_->exclusive_try_pop(bound, &event)
                          : queue_->shard_try_pop(best, bound, &event);
  if (!popped) return false;
  fire_on_caller(std::move(event));
  return true;
}

void Environment::fire_on_caller(EventQueue::Event&& event) {
  assert(event.time >= now());
  now_.store(event.time, std::memory_order_relaxed);
  ++processed_;
  if (fire_observer_) fire_observer_(event.time, event.id);
  if (config_.profile_lanes && !parallel()) {
    // Single-shard profiling: every lane folds onto shard 0.  +1 counts the
    // event being fired (already popped when sampled).
    profile_[0].max_queue_depth = std::max(profile_[0].max_queue_depth,
                                           queue_->shard_live_size(0) + 1);
    const double cpu = thread_cpu_seconds();
    event.fn();
    profile_[0].busy_s += thread_cpu_seconds() - cpu;
    ++profile_[0].events;
    return;
  }
  event.fn();
}

std::size_t Environment::run_parallel(double limit, std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events) {
    const double tq = queue_->next_time();
    if (!(tq < limit)) break;
    const double tex = queue_->exclusive_next_time();
    if (tex <= tq) {
      // The exclusive event is the global minimum: run it alone on this
      // thread, all workers quiesced.
      EventQueue::Event event;
      if (queue_->exclusive_try_pop(std::nextafter(tex, kInf), &event)) {
        ++parallel_stats_.exclusive_events;
        if (config_.profile_lanes) {
          // Every worker sits quiesced while this runs: its CPU time is
          // pure stall for the whole pool.
          const double cpu = thread_cpu_seconds();
          fire_on_caller(std::move(event));
          exclusive_stall_s_ += thread_cpu_seconds() - cpu;
        } else {
          fire_on_caller(std::move(event));
        }
        ++fired;
      }
      continue;
    }
    // Conservative window [tq, bound): each worker drains its own shard.
    // bound > tq guarantees progress even when lookahead underflows.
    double bound = std::min(std::min(tq + config_.lookahead, limit), tex);
    bound = std::max(bound, std::nextafter(tq, kInf));
    fired += run_window(bound);
  }
  return fired;
}

std::size_t Environment::run_window(double bound) {
  std::unique_lock<std::mutex> lock(run_mu_);
  window_bound_ = bound;
  window_events_ = 0;
  window_max_busy_ = 0.0;
  window_max_time_ = -kInf;
  done_count_ = 0;
  ++generation_;
  wake_cv_.notify_all();
  done_cv_.wait(lock, [this] { return done_count_ == workers_.size(); });
  ++parallel_stats_.windows;
  parallel_stats_.ideal_wall_s += window_max_busy_;
  parallel_stats_.total_busy_s = 0.0;
  for (std::size_t i = 0; i < worker_states_.size(); ++i) {
    parallel_stats_.worker_events[i] = worker_states_[i].events;
    parallel_stats_.total_busy_s += worker_states_[i].busy_s;
  }
  parallel_stats_.causality_clamps =
      causality_clamps_.load(std::memory_order_relaxed);
  if (config_.profile_lanes) {
    // Critical-path attribution: the busiest worker bounded this window's
    // wall clock; everyone else's shortfall is barrier idle time.
    ++profiled_windows_;
    std::size_t critical = SIZE_MAX;
    for (std::size_t i = 0; i < worker_states_.size(); ++i) {
      profile_[i].idle_s +=
          std::max(0.0, window_max_busy_ - worker_states_[i].last_window_busy);
      if (critical == SIZE_MAX &&
          worker_states_[i].last_window_busy == window_max_busy_) {
        critical = i;
      }
    }
    if (critical != SIZE_MAX && window_max_busy_ > 0) {
      ++profile_[critical].critical_windows;
      profile_[critical].critical_busy_s += window_max_busy_;
    }
  }
  processed_ += window_events_;
  if (window_events_ > 0) {
    now_.store(std::max(now_.load(std::memory_order_relaxed), window_max_time_),
               std::memory_order_relaxed);
  }
  return window_events_;
}

void Environment::worker_main(std::size_t index) {
  tls_ctx.env = this;
  tls_ctx.shard = static_cast<int>(index);
  std::unique_lock<std::mutex> lock(run_mu_);
  std::uint64_t seen_generation = 0;
  for (;;) {
    wake_cv_.wait(lock, [this, &seen_generation] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    const double bound = window_bound_;
    lock.unlock();

    tls_ctx.window_bound = bound;
    const std::size_t depth =
        config_.profile_lanes ? queue_->shard_live_size(index) : 0;
    const double cpu_start = thread_cpu_seconds();
    std::uint64_t fired = 0;
    double max_time = -kInf;
    EventQueue::Event event;
    while (queue_->shard_try_pop(index, bound, &event)) {
      tls_ctx.now = event.time;
      max_time = std::max(max_time, event.time);
      if (fire_observer_) fire_observer_(event.time, event.id);
      event.fn();
      ++fired;
    }
    const double busy = thread_cpu_seconds() - cpu_start;
    tls_ctx.window_bound = kInf;

    lock.lock();
    worker_states_[index].events += fired;
    worker_states_[index].busy_s += busy;
    worker_states_[index].last_window_busy = busy;
    if (config_.profile_lanes) {
      profile_[index].events += fired;
      profile_[index].busy_s += busy;
      profile_[index].max_queue_depth =
          std::max(profile_[index].max_queue_depth, depth);
    }
    window_events_ += fired;
    window_max_busy_ = std::max(window_max_busy_, busy);
    if (fired > 0) window_max_time_ = std::max(window_max_time_, max_time);
    if (++done_count_ == workers_.size()) done_cv_.notify_one();
  }
}

QueueStats Environment::queue_stats() const {
  return QueueStats{queue_->live_size(), queue_->tombstones(),
                    queue_->compactions()};
}

ProfilerReport Environment::lane_profile() const {
  ProfilerReport report;
  report.enabled = config_.profile_lanes;
  report.windows = profiled_windows_;
  report.exclusive_events = parallel_stats_.exclusive_events;
  report.exclusive_stall_s = exclusive_stall_s_;
  report.shards.reserve(profile_.size());
  std::lock_guard<std::mutex> lock(lanes_mu_);
  for (std::size_t shard = 0; shard < profile_.size(); ++shard) {
    LaneProfile lane;
    lane.shard = shard;
    for (std::size_t l = 0; l < lane_labels_.size(); ++l) {
      if (l % profile_.size() == shard) lane.lanes.push_back(lane_labels_[l]);
    }
    lane.events = profile_[shard].events;
    lane.busy_s = profile_[shard].busy_s;
    lane.idle_s = profile_[shard].idle_s;
    lane.critical_windows = profile_[shard].critical_windows;
    lane.critical_busy_s = profile_[shard].critical_busy_s;
    lane.max_queue_depth = profile_[shard].max_queue_depth;
    report.shards.push_back(std::move(lane));
  }
  return report;
}

PeriodicTimer::PeriodicTimer(Environment& env, util::Duration period,
                             std::function<void()> on_tick)
    : PeriodicTimer(env, period, std::move(on_tick), kMainLane, false) {}

PeriodicTimer::PeriodicTimer(Environment& env, util::Duration period,
                             std::function<void()> on_tick, LaneId lane,
                             bool exclusive)
    : env_(env),
      period_(period),
      on_tick_(std::move(on_tick)),
      lane_(lane),
      exclusive_(exclusive) {
  assert(period_ > 0 && "PeriodicTimer requires a positive period");
  assert(on_tick_ && "PeriodicTimer requires a callback");
}

EventId PeriodicTimer::arm(util::Duration delay) {
  if (exclusive_) {
    return env_.schedule_exclusive_after(delay, [this] { tick(); });
  }
  return env_.schedule_after_on(lane_, delay, [this] { tick(); });
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(util::Duration initial_delay) {
  stop();
  event_ = arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (event_ != kInvalidEvent) {
    env_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

void PeriodicTimer::tick() {
  // Re-arm before the callback so on_tick may call stop() to end the cycle.
  event_ = arm(period_);
  on_tick_();
}

}  // namespace gpunion::sim
