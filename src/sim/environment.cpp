#include "sim/environment.h"

#include <cassert>

namespace gpunion::sim {

Environment::Environment(std::uint64_t seed) : root_rng_(seed) {}

EventId Environment::schedule_at(util::SimTime t, EventQueue::Callback fn) {
  assert(t >= now_ && "cannot schedule into the past");
  return queue_.push(t, std::move(fn));
}

EventId Environment::schedule_after(util::Duration delay,
                                    EventQueue::Callback fn) {
  assert(delay >= 0 && "negative delay");
  return queue_.push(now_ + delay, std::move(fn));
}

std::size_t Environment::run(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

std::size_t Environment::run_until(util::SimTime t) {
  assert(t >= now_);
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
    ++n;
  }
  now_ = t;
  return n;
}

bool Environment::step() {
  if (queue_.empty()) return false;
  auto event = queue_.pop();
  assert(event.time >= now_);
  now_ = event.time;
  ++processed_;
  event.fn();
  return true;
}

PeriodicTimer::PeriodicTimer(Environment& env, util::Duration period,
                             std::function<void()> on_tick)
    : env_(env), period_(period), on_tick_(std::move(on_tick)) {
  assert(period_ > 0 && "PeriodicTimer requires a positive period");
  assert(on_tick_ && "PeriodicTimer requires a callback");
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(util::Duration initial_delay) {
  stop();
  event_ = env_.schedule_after(initial_delay, [this] { tick(); });
}

void PeriodicTimer::stop() {
  if (event_ != kInvalidEvent) {
    env_.cancel(event_);
    event_ = kInvalidEvent;
  }
}

void PeriodicTimer::tick() {
  // Re-arm before the callback so on_tick may call stop() to end the cycle.
  event_ = env_.schedule_after(period_, [this] { tick(); });
  on_tick_();
}

}  // namespace gpunion::sim
