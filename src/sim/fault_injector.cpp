#include "sim/fault_injector.h"

#include "util/logging.h"

namespace gpunion::sim {

bool FaultInjector::inject_now(const std::string& name) {
  auto it = faults_.find(name);
  if (it == faults_.end()) {
    ++misfires_;
    return false;
  }
  ++fired_[name];
  ++total_fired_;
  GPUNION_DLOG("fault") << "injecting " << name;
  it->second();
  return true;
}

void FaultInjector::inject_at(util::SimTime t, std::string name) {
  env_.schedule_exclusive_at(
      t, [this, name = std::move(name)] { (void)inject_now(name); });
}

void FaultInjector::inject_after(util::Duration delay, std::string name) {
  env_.schedule_exclusive_after(
      delay, [this, name = std::move(name)] { (void)inject_now(name); });
}

}  // namespace gpunion::sim
