// Priority event queue for the discrete-event kernel.
//
// Events fire in (time, insertion order) so simultaneous events are
// deterministic.  Cancellation is O(1) via tombstones that are skipped when
// popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace gpunion::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to fire at time `t`.  Returns a handle for cancel().
  EventId push(util::SimTime t, Callback fn);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was cancelled, or never existed.
  bool cancel(EventId id);

  bool empty() const { return callbacks_.empty(); }
  std::size_t size() const { return callbacks_.size(); }

  /// Time of the earliest pending event; kNever when empty.
  util::SimTime next_time() const;

  /// Pops and returns the earliest live event.  Requires !empty().
  struct Event {
    util::SimTime time;
    EventId id;
    Callback fn;
  };
  Event pop();

 private:
  struct Entry {
    util::SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Removes cancelled entries from the head of the heap.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<EventId, Callback> callbacks_;  // live events only
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace gpunion::sim
