// Priority event queue for the discrete-event kernel.
//
// Events fire in (time, insertion order) so simultaneous events are
// deterministic.  Cancellation is O(1) via tombstones that are skipped when
// popped; when tombstones outnumber live events the heap is compacted in
// place (O(live)) so a cancel-heavy workload — dispatch timeouts that almost
// always resolve early, session-patience timers — cannot grow the heap
// unboundedly between pops.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace gpunion::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Enqueues `fn` to fire at time `t`.  Returns a handle for cancel().
  EventId push(util::SimTime t, Callback fn);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was cancelled, or never existed.
  bool cancel(EventId id);

  bool empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }
  /// Live (non-cancelled) pending events — alias of size(), named for the
  /// bench reports.
  std::size_t live_size() const { return live_.size(); }
  /// Cancelled entries still occupying the heap.
  std::size_t tombstones() const { return heap_.size() - live_.size(); }
  /// Times the heap was rebuilt because tombstones exceeded live entries.
  std::uint64_t compactions() const { return compactions_; }

  /// Time of the earliest pending event; kNever when empty.
  util::SimTime next_time() const;

  /// Pops and returns the earliest live event.  Requires !empty().
  struct Event {
    util::SimTime time;
    EventId id;
    Callback fn;
  };
  Event pop();

 private:
  struct Entry {
    util::SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Live {
    Callback fn;
    util::SimTime time;
    std::uint64_t seq;
  };

  /// Removes cancelled entries from the head of the heap.
  void skim() const;
  /// Rebuilds the heap from the live map, dropping every tombstone.
  void compact();

  // Min-heap via std::*_heap so compact() can rebuild the storage in place
  // (std::priority_queue hides its container).
  mutable std::vector<Entry> heap_;
  std::unordered_map<EventId, Live> live_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t compactions_ = 0;
};

}  // namespace gpunion::sim
