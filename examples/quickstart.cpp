// Quickstart: stand up a campus, share GPUs, run a job and a session.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the smallest useful GPUnion deployment: the paper's 11-server
// fleet, one training job from a GPU-less group, one interactive session,
// and a provider exercising the kill-switch.
#include <cstdio>

#include "gpunion/client.h"
#include "gpunion/platform.h"

int main() {
  using namespace gpunion;

  // 1. A deterministic simulation environment (seed -> reproducible run).
  sim::Environment env(/*seed=*/42);

  // 2. The campus: 8x RTX 3090 workstations, an 8x 4090 server, 2x A100,
  //    4x A6000, and a campus NAS — the deployment from §4 of the paper.
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);  // agents register, heartbeats start

  std::printf("Fleet online: %d nodes, %d GPUs\n",
              static_cast<int>(platform.machine_ids().size()),
              platform.total_gpus());

  // 3. The "theory" group owns no GPUs — under manual coordination they
  //    simply could not train.  Submitting through GPUnion just works.
  Client client(platform, "theory");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(10);
  options.preferred_storage = {"nas-campus"};
  auto job = client.submit_training(workload::cnn_small(), /*hours=*/1.0,
                                    options);
  if (!job.ok()) {
    std::printf("submit failed: %s\n", job.status().to_string().c_str());
    return 1;
  }
  auto session = client.request_session(/*hours=*/0.5);

  env.run_until(env.now() + 30.0);
  const sched::JobRecord* record = client.status(*job);
  std::printf("Job %s -> %s on %s\n", job->c_str(),
              std::string(sched::job_phase_name(record->phase)).c_str(),
              record->node.c_str());

  // 4. Provider supremacy: the owner of that machine reclaims it NOW.
  agent::ProviderAgent* provider = platform.agent(record->node);
  std::printf("Provider %s fires the kill-switch...\n",
              provider->machine_id().c_str());
  provider->kill_switch();

  // 5. GPUnion recovers automatically: the job relaunches from its state.
  env.run_until(env.now() + util::minutes(3));
  record = client.status(*job);
  std::printf("After kill-switch: %s on %s (interruptions: %d)\n",
              std::string(sched::job_phase_name(record->phase)).c_str(),
              record->node.c_str(), record->interruptions);

  // 6. Let everything finish.
  env.run_until(env.now() + util::hours(2));
  std::printf("Final: job %s, session %s\n",
              std::string(sched::job_phase_name(client.status(*job)->phase))
                  .c_str(),
              std::string(
                  sched::job_phase_name(client.status(*session)->phase))
                  .c_str());
  std::printf("Fleet utilization over the run: %.1f%%\n",
              platform.fleet_utilization(0, env.now()) * 100.0);
  return 0;
}
