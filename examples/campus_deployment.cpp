// Campus deployment: a compressed version of the paper's §4 case study.
//
// Simulates one week of a working campus — four labs with bursty training
// demand, students requesting Jupyter sessions, providers occasionally
// taking machines back — and prints a daily utilization digest plus the
// final platform statistics.
#include <cstdio>

#include "gpunion/client.h"
#include "util/logging.h"
#include "gpunion/platform.h"
#include "workload/generator.h"
#include "workload/provider_behavior.h"

int main() {
  using namespace gpunion;
  util::Logger::instance().set_level(util::LogLevel::kError);

  sim::Environment env(/*seed=*/7);
  CampusConfig config = paper_campus();
  config.coordinator.heartbeat_interval = 10.0;
  config.agent_defaults.telemetry_interval = 300.0;
  Platform platform(env, config);
  platform.start();
  env.run_until(5.0);

  // Campus demand: two heavy labs, one light lab, students.
  std::vector<workload::GroupDemand> groups(3);
  groups[0].name = "vision";
  groups[0].owned_nodes = {Platform::machine_id_for("ws-vision-0")};
  groups[0].burst_jobs_per_day = 10.0;
  groups[0].idle_jobs_per_day = 2.0;
  groups[0].burst_days = 3.0;
  groups[0].gap_days = 4.0;
  groups[0].sessions_per_day = 6.0;
  groups[0].duration_scale = 0.5;
  groups[1].name = "nlp";
  groups[1].owned_nodes = {Platform::machine_id_for("srv-nlp-big")};
  groups[1].burst_jobs_per_day = 8.0;
  groups[1].idle_jobs_per_day = 1.0;
  groups[1].burst_days = 3.0;
  groups[1].gap_days = 4.0;
  groups[1].phase_days = 3.0;
  groups[1].sessions_per_day = 5.0;
  groups[1].duration_scale = 0.5;
  groups[2].name = "theory";
  groups[2].burst_jobs_per_day = 3.0;
  groups[2].idle_jobs_per_day = 3.0;
  groups[2].burst_days = 1.0;
  groups[2].gap_days = 0.0;
  groups[2].sessions_per_day = 8.0;
  groups[2].duration_scale = 0.4;

  const util::SimTime horizon = util::days(7);
  const auto trace =
      workload::generate_campus_trace(groups, horizon, util::Rng(7));
  for (const auto& event : trace) {
    auto job = event.job;
    env.schedule_at(event.at, [&platform, job]() mutable {
      (void)platform.coordinator().submit(std::move(job));
    });
  }

  // Providers occasionally leave and return (one event/day fleet-wide).
  workload::InterruptionModel churn;
  churn.events_per_day = 0.1;
  for (const auto& event : workload::generate_interruptions(
           platform.machine_ids(), horizon, churn, util::Rng(8))) {
    env.schedule_at(event.at, [&platform, event] {
      platform.inject_interruption(event);
    });
  }

  std::printf("Simulating one campus week (%zu submissions)...\n\n",
              trace.size());
  std::printf("%5s %14s %12s %12s %12s\n", "day", "fleet util",
              "jobs done", "sessions", "migrations");
  for (int day = 1; day <= 7; ++day) {
    env.run_until(util::days(day));
    const auto& stats = platform.coordinator().stats();
    std::printf("%5d %13.1f%% %12d %12d %12zu\n", day,
                platform.fleet_utilization(util::days(day - 1),
                                           util::days(day)) *
                    100.0,
                stats.training_completed, stats.sessions_served,
                platform.coordinator().migrations().records().size());
  }

  const auto& stats = platform.coordinator().stats();
  std::printf("\nWeek summary\n");
  std::printf("  fleet utilization: %.1f%%\n",
              platform.fleet_utilization(0, horizon) * 100.0);
  std::printf("  training jobs:     %d submitted, %d completed\n",
              stats.training_submitted, stats.training_completed);
  std::printf("  sessions:          %d served, %d denied, %d disrupted\n",
              stats.sessions_served, stats.sessions_denied,
              stats.sessions_disrupted);
  std::printf("  interruptions:     %d (migrate-back rate %.0f%%)\n",
              stats.interruptions,
              platform.coordinator().migrations().migrate_back_rate() * 100);
  std::printf("  checkpoint bytes:  %.2f GiB to nas-campus\n",
              static_cast<double>(platform.network().bytes_sent(
                  net::TrafficClass::kCheckpoint)) /
                  (1ULL << 30));
  return 0;
}
