// Federated campuses walkthrough: two autonomous GPUnion deployments
// sharing load under per-region admission policies.
//
// "hilltop" is a small, oversubscribed campus; "riverside" is a larger one
// with headroom but a cautious federation policy: it admits at most two
// remote jobs at a time and always keeps one GPU free for its own people.
// The walkthrough shows, against the live federated platform:
//   1. gossip        — both regions' capacity digests reach the broker
//   2. overflow      — hilltop's queue spills over and riverside admits
//                      remote jobs, but only up to its admission cap
//   3. autonomy      — the refusals hilltop absorbs (jobs return home and
//                      retry later) when riverside's cap is hit
//   4. outage        — hilltop goes completely dark; its checkpointed
//                      training migrates cross-campus and finishes at
//                      riverside
#include <cstdio>

#include "gpunion/federated_platform.h"
#include "util/logging.h"
#include "workload/profiles.h"

namespace {

using namespace gpunion;

CampusConfig campus(const std::string& name, int workstations) {
  CampusConfig config;
  for (int i = 0; i < workstations; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(name + "-ws-" + std::to_string(i)),
         "lab-" + name});
  }
  config.storage.push_back({"nas-" + name, 64ULL << 40});
  return config;
}

void show(FederatedPlatform& fed, const char* moment) {
  std::printf("\n== %s (t=%.0f s)\n", moment, fed.env().now());
  for (const auto& name : fed.region_names()) {
    const auto& gw = fed.gateway(name).stats();
    const auto operational = fed.region(name).coordinator().operational_stats();
    std::printf(
        "   %-10s running=%-3d pending=%-3d completed=%-3d | out: "
        "admitted=%llu returned=%llu | in: admitted=%llu refused=%llu "
        "migrations=%llu\n",
        name.c_str(), operational.running, operational.pending,
        operational.completed,
        static_cast<unsigned long long>(gw.forwards_admitted),
        static_cast<unsigned long long>(gw.forwards_returned),
        static_cast<unsigned long long>(gw.remote_admitted),
        static_cast<unsigned long long>(gw.remote_refused_cap +
                                        gw.remote_refused_capacity +
                                        gw.remote_refused_policy),
        static_cast<unsigned long long>(gw.cross_campus_migrations_in));
  }
}

}  // namespace

int main() {
  util::Logger::instance().set_level(util::LogLevel::kError);

  sim::Environment env(42);
  FederationConfig config;
  // This walkthrough narrates the hub topology (one broker everyone
  // gossips to); the brokerless mesh is the production default.
  config.topology = federation::FederationTopology::kHub;

  // Hilltop: 2 workstations, eager to push overflow out.
  federation::RegionPolicy hilltop_policy;
  hilltop_policy.digest_interval = 5.0;
  hilltop_policy.forward_after = 20.0;
  hilltop_policy.forward_retry_backoff = 40.0;
  config.regions.push_back(
      {"hilltop", campus("hilltop", 2), hilltop_policy});

  // Riverside: 6 workstations, autonomous about what it takes in — at most
  // 2 remote guests at a time, and one GPU always reserved for locals.
  federation::RegionPolicy riverside_policy;
  riverside_policy.digest_interval = 5.0;
  riverside_policy.max_remote_jobs = 2;
  riverside_policy.min_free_gpus_reserve = 1;
  config.regions.push_back(
      {"riverside", campus("riverside", 6), riverside_policy});

  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);
  // Images are pre-staged on every node; the walkthrough is about the
  // federation, not cold image distribution.
  for (const auto& name : fed.region_names()) {
    auto& platform = fed.region(name);
    for (const auto& machine_id : platform.machine_ids()) {
      platform.agent(machine_id)->runtime().mark_image_cached(
          "pytorch:2.3-cuda12.1");
    }
  }

  std::printf("Two autonomous campuses federated through one broker:\n"
              "  hilltop   %d GPUs (oversubscribed below)\n"
              "  riverside %d GPUs (cap: 2 remote jobs, 1 GPU reserved)\n",
              fed.region("hilltop").total_gpus(),
              fed.region("riverside").total_gpus());

  // 1. Gossip.
  env.run_until(12.0);
  std::printf("\n== capacity gossip at the broker\n");
  for (const auto& [name, entry] : fed.broker().regions()) {
    std::printf("   %-10s digests=%llu free-gpus=%d nodes=%d\n", name.c_str(),
                static_cast<unsigned long long>(entry.digests_received),
                entry.capacity.free_gpus, entry.capacity.nodes);
  }

  // 2. Overflow: six 3-minute training jobs into hilltop's two GPUs.
  for (int i = 0; i < 6; ++i) {
    auto job = workload::make_training_job(
        "hill-train-" + std::to_string(i), workload::cnn_small(),
        /*hours=*/0.05, "lab-hilltop", env.now());
    job.checkpoint_interval = 30.0;
    (void)fed.region("hilltop").coordinator().submit(std::move(job));
  }
  env.run_until(90.0);
  show(fed, "overflow: 6 jobs vs 2 local GPUs");
  std::printf("   riverside admitted up to its cap; the rest were refused\n"
              "   (\"admission-cap\") and returned to hilltop's queue.\n");

  // 3. Autonomy: the cap drains as remote guests finish, so returned jobs
  // get admitted on retry — nothing starves, nobody's autonomy is violated.
  env.run_until(600.0);
  show(fed, "cap drained; every overflow job finished somewhere");

  // 4. Outage: hilltop goes dark mid-training.
  for (int i = 0; i < 2; ++i) {
    auto job = workload::make_training_job(
        "hill-long-" + std::to_string(i), workload::cnn_small(),
        /*hours=*/0.2, "lab-hilltop", env.now());
    job.checkpoint_interval = 30.0;
    (void)fed.region("hilltop").coordinator().submit(std::move(job));
  }
  env.run_until(700.0);  // both long jobs running, checkpoints on the NAS
  fed.inject_region_outage("hilltop", /*downtime=*/3600.0);
  env.run_until(1600.0);
  show(fed, "hilltop outage: checkpointed training migrated cross-campus");

  const auto stats = fed.stats();
  std::printf(
      "\nFederation totals: %llu forwards admitted, %llu refused, %llu "
      "cross-campus\nmigrations (%.2f GB of checkpoints over the WAN), "
      "broker saw %llu messages.\n",
      static_cast<unsigned long long>(stats.forwards_admitted),
      static_cast<unsigned long long>(stats.remote_refused),
      static_cast<unsigned long long>(stats.cross_campus_migrations),
      static_cast<double>(stats.checkpoint_bytes_shipped) / 1e9,
      static_cast<unsigned long long>(stats.broker_digests_received +
                                      stats.broker_ranking_requests));
  return 0;
}
