// Resilient training: follow one long job through repeated provider churn.
//
// A 24-hour transformer training job survives five provider departures.
// The example prints the job's timeline — checkpoints, interruptions,
// restores, migrations — exactly the lifecycle §3.5 describes.
#include <cstdio>

#include "gpunion/client.h"
#include "util/logging.h"
#include "gpunion/platform.h"

int main() {
  using namespace gpunion;
  util::Logger::instance().set_level(util::LogLevel::kError);

  sim::Environment env(23);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);

  Client client(platform, "bio");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(15);
  options.preferred_storage = {"nas-campus"};  // user-designated (§3.2)
  auto job = client.submit_training(workload::transformer_small(),
                                    /*hours=*/24.0, options);
  if (!job.ok()) {
    std::printf("submit failed: %s\n", job.status().to_string().c_str());
    return 1;
  }
  std::printf("Submitted %s: 24 reference-hours of transformer training, "
              "checkpoints every 15 min to nas-campus\n\n", job->c_str());

  // Five provider failures spread over the run, alternating kinds.
  const agent::DepartureKind kinds[] = {
      agent::DepartureKind::kEmergency, agent::DepartureKind::kScheduled,
      agent::DepartureKind::kTemporary, agent::DepartureKind::kEmergency,
      agent::DepartureKind::kScheduled};
  for (int k = 0; k < 5; ++k) {
    env.schedule_at(util::hours(2.0 + 3.5 * k),
                    [&platform, job = *job, kind = kinds[k]] {
      const auto* record = platform.coordinator().job(job);
      if (record == nullptr ||
          record->phase != sched::JobPhase::kRunning) {
        return;
      }
      workload::Interruption event;
      event.machine_id = record->node;
      event.kind = kind;
      event.downtime = util::minutes(45);
      std::printf("t=%6.2fh  provider %s departs (%s)\n",
                  platform.env().now() / 3600.0, record->node.c_str(),
                  std::string(agent::departure_kind_name(kind)).c_str());
      platform.inject_interruption(event);
    });
  }

  // Hourly progress digest.
  for (int hour = 1; hour <= 40; ++hour) {
    env.run_until(util::hours(hour));
    const auto* record = platform.coordinator().job(*job);
    if (record->phase == sched::JobPhase::kCompleted) {
      std::printf("t=%6.2fh  COMPLETED (total %.2f h vs 24 h ideal -> "
                  "+%.1f%% overhead)\n",
                  env.now() / 3600.0,
                  (record->completed_at - record->submitted_at) / 3600.0,
                  100.0 * ((record->completed_at - record->submitted_at) /
                               (24.0 * 3600.0) -
                           1.0));
      break;
    }
    if (hour % 4 == 0) {
      std::printf("t=%6.2fh  progress %5.1f%% durable on %s "
                  "(interruptions so far: %d)\n",
                  env.now() / 3600.0,
                  record->checkpointed_progress * 100.0,
                  record->node.c_str(), record->interruptions);
    }
  }

  const auto* record = platform.coordinator().job(*job);
  std::printf("\nLifecycle summary for %s\n", job->c_str());
  std::printf("  interruptions:  %d\n", record->interruptions);
  std::printf("  migrations:     %d (+%d migrate-backs)\n",
              record->migrations, record->migrate_backs);
  std::printf("  work recomputed: %.1f minutes\n",
              record->lost_work_seconds / 60.0);
  std::printf("  checkpoint traffic: %.2f GiB, restore traffic: %.2f GiB\n",
              static_cast<double>(platform.network().bytes_sent(
                  net::TrafficClass::kCheckpoint)) /
                  (1ULL << 30),
              static_cast<double>(platform.network().bytes_sent(
                  net::TrafficClass::kMigration)) /
                  (1ULL << 30));
  return 0;
}
