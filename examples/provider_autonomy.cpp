// Provider autonomy walkthrough: every control the paper gives providers.
//
// Demonstrates, in order, against a live platform with guest workloads:
//   1. pause            — stop receiving new allocations, keep guests
//   2. kill-switch      — instantly terminate all guests, no negotiation
//   3. reclaim          — evict just enough guests to free GPUs the owner
//                         needs (guests get a parting checkpoint)
//   4. graceful depart  — checkpoint guests within the grace window, leave
//   5. emergency depart — vanish; the platform detects it via heartbeats
//   6. rejoin           — return; displaced work migrates back
#include <cstdio>

#include "gpunion/client.h"
#include "util/logging.h"
#include "gpunion/platform.h"

namespace {

void show(gpunion::Platform& platform, const char* moment) {
  int running = 0;
  for (const auto& [id, record] : platform.coordinator().jobs()) {
    if (record.phase == gpunion::sched::JobPhase::kRunning) ++running;
  }
  int active_nodes = 0;
  for (const auto* node : platform.coordinator().directory().all()) {
    if (node->status == gpunion::db::NodeStatus::kActive) ++active_nodes;
  }
  std::printf("%-44s nodes=%2d running-jobs=%2d interruptions=%d\n", moment,
              active_nodes, running,
              platform.coordinator().stats().interruptions);
}

}  // namespace

int main() {
  using namespace gpunion;
  util::Logger::instance().set_level(util::LogLevel::kError);

  sim::Environment env(11);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);

  // Load the fleet with guest work from two groups.
  Client vision(platform, "vision");
  Client theory(platform, "theory");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(10);
  std::vector<std::string> jobs;
  for (int i = 0; i < 10; ++i) {
    auto job = (i % 2 == 0 ? vision : theory)
                   .submit_training(workload::cnn_small(), 8.0, options);
    if (job.ok()) jobs.push_back(*job);
  }
  env.run_until(env.now() + util::minutes(15));
  show(platform, "fleet loaded with 10 guest jobs");

  // Pick a workstation that is actually hosting a *guest* (a job from
  // another group), so the reclaim demo has something to evict.
  agent::ProviderAgent* provider = nullptr;
  for (const auto& [job_id, record] : platform.coordinator().jobs()) {
    if (record.phase != sched::JobPhase::kRunning) continue;
    const auto* node = platform.coordinator().directory().find(record.node);
    if (node == nullptr || node->gpu_count != 1) continue;
    if (node->owner_group == record.spec.owner_group) continue;  // own work
    provider = platform.agent(record.node);
    break;
  }
  if (provider == nullptr) {
    std::printf("no loaded workstation found\n");
    return 1;
  }
  std::printf("\n--- provider %s takes control ---\n",
              provider->machine_id().c_str());

  // 1. Pause: no new guests, existing ones keep running.
  provider->set_paused(true);
  env.run_until(env.now() + 30.0);
  show(platform, "1. paused (guests keep running)");
  provider->set_paused(false);

  // 2. Kill-switch: unconditional, instant.
  const auto killed = provider->kill_switch();
  std::printf("   kill-switch terminated %zu guest(s) instantly\n",
              killed.size());
  env.run_until(env.now() + util::minutes(2));
  show(platform, "2. after kill-switch (guests migrated)");

  // 3. Reclaim: the owner needs one GPU for local work.  Reclaim only ever
  //    evicts guests — if the platform has since placed the owner's own
  //    group's job here, it is protected.
  env.run_until(env.now() + util::minutes(10));
  const int freed = provider->reclaim_gpus(1);
  if (freed > 0) {
    std::printf("   reclaim freed %d GPU(s); evicted guests were "
                "checkpointed first\n", freed);
  } else {
    std::printf("   reclaim freed 0 GPUs: the machine is running its own "
                "group's work, which reclaim never evicts\n");
  }
  env.run_until(env.now() + util::minutes(2));
  show(platform, "3. after owner reclaim");

  // 4. Graceful departure: grace-window checkpoints, notify, leave.
  provider->depart_scheduled();
  env.run_until(env.now() + util::minutes(2));
  show(platform, "4. after graceful departure");
  provider->rejoin();
  env.run_until(env.now() + util::minutes(1));

  // 5. Temporary unavailability: a power blip, no notice at all; the
  //    platform detects the silence via missed heartbeats.
  platform.coordinator().set_cause_hint(provider->machine_id(),
                                        agent::DepartureKind::kTemporary);
  provider->depart_emergency();
  env.run_until(env.now() + util::minutes(2));
  show(platform, "5. after unannounced outage (heartbeat-detected)");

  // 6. Rejoin: the platform folds the machine back in.
  provider->rejoin();
  env.run_until(env.now() + util::minutes(5));
  show(platform, "6. after rejoin");

  std::printf("\nMigration record: %zu interruption(s), migrate-back rate "
              "%.0f%%\n",
              platform.coordinator().migrations().records().size(),
              platform.coordinator().stats().migrate_back_rate() * 100);
  std::printf("All controls executed locally by the provider; the platform "
              "only ever reacted.\n");
  return 0;
}
