#include "db/database.h"

#include <gtest/gtest.h>

namespace gpunion::db {
namespace {

NodeRecord node(const std::string& id) {
  NodeRecord record;
  record.machine_id = id;
  record.hostname = "host-" + id;
  record.gpu_count = 1;
  return record;
}

TEST(DatabaseTest, NodeUpsertAndLookup) {
  SystemDatabase database;
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  auto found = database.node("m-1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->hostname, "host-m-1");
  EXPECT_EQ(database.node("ghost").status().code(),
            util::StatusCode::kNotFound);
}

TEST(DatabaseTest, EmptyMachineIdRejected) {
  SystemDatabase database;
  EXPECT_EQ(database.upsert_node(NodeRecord{}).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, StatusTransitions) {
  SystemDatabase database;
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  ASSERT_TRUE(
      database.set_node_status("m-1", NodeStatus::kUnavailable).is_ok());
  EXPECT_EQ(database.node("m-1")->status, NodeStatus::kUnavailable);
  EXPECT_EQ(database.nodes_with_status(NodeStatus::kUnavailable).size(), 1u);
  EXPECT_EQ(database.nodes_with_status(NodeStatus::kActive).size(), 0u);
}

TEST(DatabaseTest, HeartbeatTouch) {
  SystemDatabase database;
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  ASSERT_TRUE(database.touch_heartbeat("m-1", 42.0).is_ok());
  EXPECT_DOUBLE_EQ(database.node("m-1")->last_heartbeat, 42.0);
  EXPECT_EQ(database.touch_heartbeat("ghost", 1.0).code(),
            util::StatusCode::kNotFound);
}

TEST(DatabaseTest, BatchedHeartbeatTouchIsOneOperation) {
  SystemDatabase database;
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  ASSERT_TRUE(database.upsert_node(node("m-2")).is_ok());
  ASSERT_TRUE(database.upsert_node(node("m-3")).is_ok());
  const std::uint64_t before = database.op_count();
  // Three touches, one batched write, unknown machine skipped.
  EXPECT_EQ(database.touch_heartbeats(
                {{"m-1", 10.0}, {"m-2", 11.0}, {"m-3", 12.0}, {"ghost", 9.0}}),
            3u);
  EXPECT_EQ(database.op_count(), before + 1);
  EXPECT_DOUBLE_EQ(database.node("m-1")->last_heartbeat, 10.0);
  EXPECT_DOUBLE_EQ(database.node("m-3")->last_heartbeat, 12.0);
  // A stale batched value never rolls a fresher row backwards.
  EXPECT_EQ(database.touch_heartbeats({{"m-1", 5.0}}), 1u);
  EXPECT_DOUBLE_EQ(database.node("m-1")->last_heartbeat, 10.0);
}

TEST(DatabaseTest, AllocationLedgerLifecycle) {
  SystemDatabase database;
  const auto id = database.open_allocation("job-1", "m-1", {0, 1}, 10.0);
  EXPECT_GT(id, 0u);
  ASSERT_TRUE(
      database.close_allocation(id, AllocationOutcome::kCompleted, 20.0)
          .is_ok());
  const auto rows = database.allocations_for_job("job-1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].machine_id, "m-1");
  EXPECT_EQ(rows[0].gpu_indices.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].ended_at, 20.0);
  EXPECT_EQ(rows[0].outcome, AllocationOutcome::kCompleted);
}

TEST(DatabaseTest, DoubleCloseRejected) {
  SystemDatabase database;
  const auto id = database.open_allocation("job-1", "m-1", {0}, 10.0);
  ASSERT_TRUE(database.close_allocation(id, AllocationOutcome::kKilled, 20.0)
                  .is_ok());
  EXPECT_EQ(
      database.close_allocation(id, AllocationOutcome::kCompleted, 30.0)
          .code(),
      util::StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, QueuePriorityThenFifo) {
  SystemDatabase database;
  database.enqueue_request({"low-1", 0, 1.0});
  database.enqueue_request({"high-1", 5, 2.0});
  database.enqueue_request({"low-2", 0, 3.0});
  database.enqueue_request({"high-2", 5, 4.0});
  EXPECT_EQ(database.pop_request()->job_id, "high-1");
  EXPECT_EQ(database.pop_request()->job_id, "high-2");
  EXPECT_EQ(database.pop_request()->job_id, "low-1");
  EXPECT_EQ(database.pop_request()->job_id, "low-2");
  EXPECT_FALSE(database.pop_request().has_value());
}

TEST(DatabaseTest, QueueFrontInsertion) {
  SystemDatabase database;
  database.enqueue_request({"a", 0, 1.0});
  database.enqueue_request_front({"displaced", 0, 0.5});
  EXPECT_EQ(database.pop_request()->job_id, "displaced");
  EXPECT_EQ(database.pop_request()->job_id, "a");
}

TEST(DatabaseTest, RemoveRequest) {
  SystemDatabase database;
  database.enqueue_request({"a", 0, 1.0});
  database.enqueue_request({"b", 0, 2.0});
  EXPECT_TRUE(database.remove_request("a"));
  EXPECT_FALSE(database.remove_request("a"));
  EXPECT_EQ(database.queue_depth(), 1u);
  EXPECT_EQ(database.pop_request()->job_id, "b");
}

TEST(DatabaseTest, MetricsRingBuffer) {
  DatabaseConfig config;
  config.history_limit = 3;
  SystemDatabase database(config);
  for (int i = 0; i < 5; ++i) {
    database.record_metric("util", i, i * 10.0);
  }
  const auto& series = database.series("util");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.front().value, 20.0);  // oldest kept is i=2
  EXPECT_DOUBLE_EQ(series.back().value, 40.0);
}

TEST(DatabaseTest, SeriesNamesSorted) {
  SystemDatabase database;
  database.record_metric("zeta", 0, 1);
  database.record_metric("alpha", 0, 1);
  EXPECT_EQ(database.series_names(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(DatabaseTest, ContentionModelSaturates) {
  SystemDatabase database;  // default service time 0.8 ms -> mu = 1250/s
  const double light = database.estimated_latency(100.0);
  const double heavy = database.estimated_latency(1200.0);
  EXPECT_LT(light, 0.001);
  EXPECT_GT(heavy, 10 * light);
  EXPECT_EQ(database.estimated_latency(1250.0), util::kNever);
  EXPECT_EQ(database.estimated_latency(2000.0), util::kNever);
}

TEST(DatabaseTest, OpCounting) {
  SystemDatabase database;
  const auto before = database.op_count();
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  (void)database.nodes();
  EXPECT_EQ(database.op_count(), before + 2);
}

}  // namespace
}  // namespace gpunion::db
