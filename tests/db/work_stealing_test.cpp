// Work-stealing pending-queue partitions: the sharded queue must reproduce
// the legacy single-deque pop order exactly while spreading storage across
// per-shard partitions and counting cross-partition steals.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/sharded_database.h"

namespace gpunion::db {
namespace {

DbConfig sharded(int shards) {
  DbConfig config;
  config.shard_count = shards;
  config.write_behind = false;  // queue semantics only; no ledger noise
  return config;
}

/// Drains both databases and asserts the pop sequences are identical.
void expect_same_drain(ShardedDatabase& a, ShardedDatabase& b) {
  for (;;) {
    std::optional<PendingRequest> req_a = a.pop_request();
    std::optional<PendingRequest> req_b = b.pop_request();
    ASSERT_EQ(req_a.has_value(), req_b.has_value());
    if (!req_a.has_value()) return;
    EXPECT_EQ(req_a->job_id, req_b->job_id);
    EXPECT_EQ(req_a->priority, req_b->priority);
  }
}

TEST(WorkStealingQueueTest, MatchesSingleShardOrderMixedPriorities) {
  ShardedDatabase legacy(sharded(1));
  ShardedDatabase partitioned(sharded(8));
  const int priorities[] = {0, 5, 0, 2, 5, 0, 2, 9, 0, 5, 2, 9};
  for (int i = 0; i < 12; ++i) {
    PendingRequest request{"job-" + std::to_string(i), priorities[i],
                           static_cast<double>(i)};
    legacy.enqueue_request(request);
    partitioned.enqueue_request(request);
  }
  expect_same_drain(legacy, partitioned);
}

TEST(WorkStealingQueueTest, FrontPushesPreserveLifoWithinPriority) {
  ShardedDatabase legacy(sharded(1));
  ShardedDatabase partitioned(sharded(4));
  for (auto* database : {&legacy, &partitioned}) {
    database->enqueue_request({"back-1", 3, 1.0});
    database->enqueue_request({"back-2", 3, 2.0});
    database->enqueue_request_front({"front-1", 3, 3.0});
    database->enqueue_request_front({"front-2", 3, 4.0});
    database->enqueue_request({"back-3", 3, 5.0});
    database->enqueue_request_front({"low-front", 1, 6.0});
  }
  // Legacy order within priority 3: front-2, front-1, back-1, back-2,
  // back-3; then priority 1.
  expect_same_drain(legacy, partitioned);
}

TEST(WorkStealingQueueTest, CountsLocalAndStolenPops) {
  ShardedDatabase database(sharded(4));
  for (int i = 0; i < 40; ++i) {
    database.enqueue_request(
        {"job-" + std::to_string(i), 0, static_cast<double>(i)});
  }
  std::size_t popped = 0;
  while (database.pop_request().has_value()) ++popped;
  EXPECT_EQ(popped, 40u);
  EXPECT_EQ(database.local_pops() + database.stolen_pops(), 40u);
  // FIFO across hashed partitions against a rotating server: most pops
  // cross partitions.  The exact split is deterministic (FNV-1a routing),
  // but all we rely on is that stealing actually happens.
  EXPECT_GT(database.stolen_pops(), 0u);
}

TEST(WorkStealingQueueTest, RemoveOnlyScansOwnerPartition) {
  ShardedDatabase database(sharded(8));
  for (int i = 0; i < 16; ++i) {
    database.enqueue_request(
        {"job-" + std::to_string(i), i % 3, static_cast<double>(i)});
  }
  EXPECT_EQ(database.queue_depth(), 16u);
  EXPECT_TRUE(database.remove_request("job-7"));
  EXPECT_FALSE(database.remove_request("job-7"));
  EXPECT_FALSE(database.remove_request("no-such-job"));
  EXPECT_EQ(database.queue_depth(), 15u);
  std::vector<std::string> drained;
  while (auto request = database.pop_request()) {
    drained.push_back(request->job_id);
  }
  EXPECT_EQ(drained.size(), 15u);
  for (const auto& id : drained) EXPECT_NE(id, "job-7");
}

TEST(WorkStealingQueueTest, DepthIsConstantTimeAndConsistent) {
  ShardedDatabase database(sharded(4));
  EXPECT_EQ(database.queue_depth(), 0u);
  for (int i = 0; i < 10; ++i) {
    database.enqueue_request(
        {"job-" + std::to_string(i), i, static_cast<double>(i)});
    EXPECT_EQ(database.queue_depth(), static_cast<std::size_t>(i + 1));
  }
  (void)database.pop_request();
  EXPECT_EQ(database.queue_depth(), 9u);
  database.enqueue_request_front({"rush", 99, 0.0});
  EXPECT_EQ(database.queue_depth(), 10u);
  EXPECT_EQ(database.pop_request()->job_id, "rush");
  EXPECT_EQ(database.queue_depth(), 9u);
}

TEST(WorkStealingQueueTest, OpAccountingUnchangedByPartitioning) {
  // Partitioning reorganizes storage, not the cost model: each pop still
  // charges exactly one op to the rotating server shard.
  ShardedDatabase database(sharded(4));
  for (int i = 0; i < 8; ++i) {
    database.enqueue_request(
        {"job-" + std::to_string(i), 0, static_cast<double>(i)});
  }
  const std::uint64_t before = database.sync_op_count();
  for (int i = 0; i < 8; ++i) (void)database.pop_request();
  EXPECT_EQ(database.sync_op_count(), before + 8);
}

}  // namespace
}  // namespace gpunion::db
