#include "db/shard_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace gpunion::db {
namespace {

TEST(ShardExecutorTest, RunsEveryTask) {
  ShardExecutor executor(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    executor.run(static_cast<std::size_t>(i % 7), [&] { ++count; });
  }
  executor.barrier();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(executor.tasks_run(), 100u);
}

TEST(ShardExecutorTest, ShardTasksRunInSubmissionOrder) {
  ShardExecutor executor(3);
  std::vector<int> order;  // shard 1 is one thread: no lock needed there,
                           // but the barrier is the read fence for us.
  for (int i = 0; i < 50; ++i) {
    executor.run(1, [&order, i] { order.push_back(i); });
  }
  executor.barrier();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ShardExecutorTest, SameShardStaysOnOneThread) {
  ShardExecutor executor(4);
  std::mutex mu;
  std::set<std::thread::id> shard2_threads;
  for (int i = 0; i < 40; ++i) {
    executor.run(2, [&] {
      std::lock_guard<std::mutex> lock(mu);
      shard2_threads.insert(std::this_thread::get_id());
    });
  }
  executor.barrier();
  EXPECT_EQ(shard2_threads.size(), 1u) << "shard affinity violated";
}

TEST(ShardExecutorTest, BarrierIsAHappensBeforeEdge) {
  ShardExecutor executor(2);
  int plain = 0;  // deliberately non-atomic: the barrier must fence it
  executor.run(0, [&] { plain = 41; });
  executor.barrier();
  executor.run(1, [&] { ++plain; });
  executor.barrier();
  EXPECT_EQ(plain, 42);
}

TEST(ShardExecutorTest, ClampsThreadCountToAtLeastOne) {
  ShardExecutor executor(0);
  EXPECT_EQ(executor.thread_count(), 1u);
  std::atomic<bool> ran{false};
  executor.run(5, [&] { ran = true; });
  executor.barrier();
  EXPECT_TRUE(ran.load());
}

TEST(ShardExecutorTest, DestructorDrainsPendingWork) {
  std::atomic<int> count{0};
  {
    ShardExecutor executor(2);
    for (int i = 0; i < 20; ++i) {
      executor.run(static_cast<std::size_t>(i), [&] { ++count; });
    }
  }  // dtor barriers before joining
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace gpunion::db
