// ShardedDatabase: deterministic shard routing, per-shard op accounting,
// read-your-writes through the write-behind ledger, flush-on-threshold vs
// flush-on-interval triggers, and exact legacy-mode equivalence against the
// single-writer SystemDatabase over an identical op sequence.
#include "db/sharded_database.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "db/database.h"

namespace gpunion::db {
namespace {

NodeRecord node(const std::string& id) {
  NodeRecord record;
  record.machine_id = id;
  record.hostname = "host-" + id;
  record.gpu_count = 1;
  return record;
}

DbConfig sharded_config(int shards = 4, std::size_t threshold = 1000) {
  DbConfig config;
  config.shard_count = shards;
  config.write_behind = true;
  config.flush_threshold = threshold;
  return config;
}

DbConfig legacy_config() {
  DbConfig config;
  config.shard_count = 1;
  config.write_behind = false;
  return config;
}

TEST(ShardedDbTest, RoutingIsDeterministicAndInRange) {
  ShardedDatabase a(sharded_config());
  ShardedDatabase b(sharded_config());
  bool spread = false;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "m-" + std::to_string(i);
    const std::size_t shard = a.shard_for_node(key);
    EXPECT_LT(shard, 4u);
    // Same key, same shard — across calls and across instances.
    EXPECT_EQ(shard, a.shard_for_node(key));
    EXPECT_EQ(shard, b.shard_for_node(key));
    // Job- and node-keyed rows share the hash, so a job id routes the same
    // wherever it appears.
    EXPECT_EQ(a.shard_for_job(key), shard);
    if (shard != a.shard_for_node("m-0")) spread = true;
  }
  EXPECT_TRUE(spread) << "64 keys all landed on one shard";
}

TEST(ShardedDbTest, PerShardOpAccounting) {
  // Registry/heartbeat ops charge synchronously even under write-behind.
  ShardedDatabase sharded(sharded_config());

  // Find two machine ids living on different shards.
  std::string first = "m-0";
  std::string second;
  for (int i = 1; i < 64 && second.empty(); ++i) {
    const std::string candidate = "m-" + std::to_string(i);
    if (sharded.shard_for_node(candidate) != sharded.shard_for_node(first)) {
      second = candidate;
    }
  }
  ASSERT_FALSE(second.empty());
  const std::size_t shard_a = sharded.shard_for_node(first);
  const std::size_t shard_b = sharded.shard_for_node(second);

  ASSERT_TRUE(sharded.upsert_node(node(first)).is_ok());
  EXPECT_EQ(sharded.shard_ops(shard_a), 1u);
  EXPECT_EQ(sharded.shard_ops(shard_b), 0u);
  ASSERT_TRUE(sharded.upsert_node(node(second)).is_ok());
  ASSERT_TRUE(sharded.touch_heartbeat(second, 5.0).is_ok());
  EXPECT_EQ(sharded.shard_ops(shard_a), 1u);
  EXPECT_EQ(sharded.shard_ops(shard_b), 2u);
  // Rows are owned where the ops landed.
  EXPECT_GE(sharded.shard_rows(shard_a), 1u);
  EXPECT_GE(sharded.shard_rows(shard_b), 1u);
  // op_count() is the sum of the lanes.
  EXPECT_EQ(sharded.op_count(), 3u);

  // A batched heartbeat touch charges ONE op per shard in the batch.
  const std::uint64_t before_a = sharded.shard_ops(shard_a);
  const std::uint64_t before_b = sharded.shard_ops(shard_b);
  EXPECT_EQ(sharded.touch_heartbeats({{first, 10.0}, {second, 10.0}}), 2u);
  EXPECT_EQ(sharded.shard_ops(shard_a), before_a + 1);
  EXPECT_EQ(sharded.shard_ops(shard_b), before_b + 1);
}

TEST(ShardedDbTest, ReadYourWritesThroughUnflushedLedger) {
  ShardedDatabase database(sharded_config(4, /*threshold=*/1000));
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  const std::uint64_t ops_after_registry = database.op_count();

  // Per-decision mutations absorb into the ledger: no shard write yet.
  const auto alloc = database.open_allocation("job-1", "m-1", {0}, 10.0);
  database.enqueue_request({"job-2", 0, 11.0});
  database.record_provenance({"job-1", "alpha", "beta", 12.0});
  EXPECT_EQ(database.op_count(), ops_after_registry)
      << "ledgered writes must not charge shards before the flush";
  EXPECT_EQ(database.ledger().pending(), 3u);

  // ...but every reader sees the ledgered state immediately.
  const auto rows = database.allocations_for_job("job-1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].allocation_id, alloc);
  EXPECT_EQ(rows[0].machine_id, "m-1");
  ASSERT_NE(database.provenance("job-1"), nullptr);
  EXPECT_EQ(database.provenance("job-1")->executing_region, "beta");
  EXPECT_EQ(database.queue_depth(), 1u);
  EXPECT_EQ(database.pop_request()->job_id, "job-2");

  // Closing the still-unflushed allocation works (read-modify-write sees
  // the ledgered open).
  ASSERT_TRUE(
      database.close_allocation(alloc, AllocationOutcome::kCompleted, 20.0)
          .is_ok());

  // The flush group-commits and only then charges the owning shards.
  const std::uint64_t before_flush = database.op_count();
  const std::size_t pending = database.ledger().pending();
  EXPECT_GT(pending, 0u);
  EXPECT_EQ(database.flush_ledger(), pending);
  EXPECT_EQ(database.ledger().pending(), 0u);
  EXPECT_GT(database.op_count(), before_flush);
  // One commit per touched shard, never more than entries or shards.
  EXPECT_LE(database.op_count() - before_flush, pending);
  EXPECT_LE(database.op_count() - before_flush, 4u);
}

TEST(ShardedDbTest, ThresholdFlushVsIntervalFlush) {
  ShardedDatabase database(sharded_config(4, /*threshold=*/3));
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());

  // Two mutations sit below the threshold...
  (void)database.open_allocation("job-1", "m-1", {0}, 1.0);
  database.enqueue_request({"job-2", 0, 2.0});
  EXPECT_EQ(database.ledger().pending(), 2u);
  EXPECT_EQ(database.ledger().stats().threshold_flushes, 0u);
  // ...the third crosses it and flushes without any timer.
  database.record_provenance({"job-1", "alpha", "alpha", 3.0});
  EXPECT_EQ(database.ledger().pending(), 0u);
  EXPECT_EQ(database.ledger().stats().threshold_flushes, 1u);
  EXPECT_EQ(database.ledger().stats().entries_flushed, 3u);

  // The interval trigger is the owner's timer calling flush_ledger.
  database.enqueue_request({"job-3", 0, 4.0});
  EXPECT_EQ(database.flush_ledger(FlushTrigger::kInterval), 1u);
  EXPECT_EQ(database.ledger().stats().interval_flushes, 1u);
  // An empty interval flush is a no-op, not a counted flush.
  EXPECT_EQ(database.flush_ledger(FlushTrigger::kInterval), 0u);
  EXPECT_EQ(database.ledger().stats().interval_flushes, 1u);
  EXPECT_EQ(database.ledger().stats().absorbed, 4u);
}

/// Drives one identical op sequence against any Database implementation.
void drive(Database& database) {
  ASSERT_TRUE(database.upsert_node(node("m-1")).is_ok());
  ASSERT_TRUE(database.upsert_node(node("m-2")).is_ok());
  ASSERT_TRUE(database.upsert_node(node("m-3")).is_ok());
  ASSERT_TRUE(
      database.set_node_status("m-3", NodeStatus::kUnavailable).is_ok());
  EXPECT_EQ(database.touch_heartbeats({{"m-1", 5.0}, {"m-2", 6.0}}), 2u);

  const auto a1 = database.open_allocation("job-1", "m-1", {0}, 10.0);
  const auto a2 = database.open_allocation("job-2", "m-2", {0}, 11.0, 0.25,
                                           /*interactive=*/true);
  ASSERT_TRUE(
      database.close_allocation(a1, AllocationOutcome::kCompleted, 20.0)
          .is_ok());
  ASSERT_TRUE(
      database.close_allocation(a2, AllocationOutcome::kMigrated, 21.0)
          .is_ok());
  (void)database.open_allocation("job-2", "m-1", {0}, 22.0);

  database.enqueue_request({"low", 0, 1.0});
  database.enqueue_request({"high", 5, 2.0});
  database.enqueue_request_front({"displaced", 0, 0.5});
  EXPECT_TRUE(database.remove_request("low"));
  EXPECT_FALSE(database.remove_request("ghost"));

  database.record_provenance({"job-2", "alpha", "beta", 30.0});
  database.record_provenance({"job-2", "alpha", "gamma", 40.0});
  database.record_metric("util", 1.0, 0.5);
  database.record_metric("util", 2.0, 0.75);
}

/// Final logical contents must be identical, field by field.
void expect_same_contents(Database& a, Database& b) {
  // Node registry.
  const auto nodes_a = a.nodes();
  const auto nodes_b = b.nodes();
  ASSERT_EQ(nodes_a.size(), nodes_b.size());
  for (std::size_t i = 0; i < nodes_a.size(); ++i) {
    EXPECT_EQ(nodes_a[i].machine_id, nodes_b[i].machine_id);
    EXPECT_EQ(nodes_a[i].hostname, nodes_b[i].hostname);
    EXPECT_EQ(nodes_a[i].status, nodes_b[i].status);
    EXPECT_DOUBLE_EQ(nodes_a[i].last_heartbeat, nodes_b[i].last_heartbeat);
  }
  // Allocation ledger — including ids (both stores assign sequentially in
  // op order).
  const auto& ledger_a = a.allocation_ledger();
  const auto& ledger_b = b.allocation_ledger();
  ASSERT_EQ(ledger_a.size(), ledger_b.size());
  for (std::size_t i = 0; i < ledger_a.size(); ++i) {
    EXPECT_EQ(ledger_a[i].allocation_id, ledger_b[i].allocation_id);
    EXPECT_EQ(ledger_a[i].job_id, ledger_b[i].job_id);
    EXPECT_EQ(ledger_a[i].machine_id, ledger_b[i].machine_id);
    EXPECT_EQ(ledger_a[i].outcome, ledger_b[i].outcome);
    EXPECT_DOUBLE_EQ(ledger_a[i].started_at, ledger_b[i].started_at);
    EXPECT_DOUBLE_EQ(ledger_a[i].ended_at, ledger_b[i].ended_at);
    EXPECT_DOUBLE_EQ(ledger_a[i].gpu_fraction, ledger_b[i].gpu_fraction);
    EXPECT_EQ(ledger_a[i].interactive, ledger_b[i].interactive);
  }
  // Provenance log.
  const auto& prov_a = a.provenance_log();
  const auto& prov_b = b.provenance_log();
  ASSERT_EQ(prov_a.size(), prov_b.size());
  for (std::size_t i = 0; i < prov_a.size(); ++i) {
    EXPECT_EQ(prov_a[i].job_id, prov_b[i].job_id);
    EXPECT_EQ(prov_a[i].origin_region, prov_b[i].origin_region);
    EXPECT_EQ(prov_a[i].executing_region, prov_b[i].executing_region);
  }
  // Metric series.
  EXPECT_EQ(a.series_names(), b.series_names());
  ASSERT_EQ(a.series("util").size(), b.series("util").size());
  // Queue: identical drain order empties both.
  while (true) {
    auto req_a = a.pop_request();
    auto req_b = b.pop_request();
    ASSERT_EQ(req_a.has_value(), req_b.has_value());
    if (!req_a.has_value()) break;
    EXPECT_EQ(req_a->job_id, req_b->job_id);
    EXPECT_EQ(req_a->priority, req_b->priority);
  }
}

TEST(ShardedDbTest, LegacyModeMatchesSingleWriterExactly) {
  SystemDatabase single;
  ShardedDatabase legacy(legacy_config());
  drive(single);
  drive(legacy);
  // Same contents AND the same op accounting: {1 shard, write-behind off}
  // IS the single-writer path.
  EXPECT_EQ(legacy.op_count(), single.op_count());
  EXPECT_EQ(legacy.ledger().stats().absorbed, 0u);
  expect_same_contents(single, legacy);
}

TEST(ShardedDbTest, ShardedWriteBehindConvergesToSameContents) {
  SystemDatabase single;
  ShardedDatabase sharded(sharded_config(4, /*threshold=*/5));
  drive(single);
  drive(sharded);
  (void)sharded.flush_ledger();  // settle the tail of the ledger
  EXPECT_EQ(sharded.ledger().pending(), 0u);
  // Far fewer charged writes, identical final state.
  EXPECT_LT(sharded.sync_op_count(), single.op_count());
  expect_same_contents(single, sharded);
}

TEST(ShardedDbTest, PerShardLatencyModel) {
  ShardedDatabase database(sharded_config(4));
  const double mu = database.service_rate();  // one writer lane
  // A load that saturates one writer is comfortable across four.
  EXPECT_EQ(database.estimated_shard_latency(mu), util::kNever);
  EXPECT_LT(database.estimated_latency(2.0 * mu), 0.01);
  EXPECT_EQ(database.estimated_latency(4.0 * mu), util::kNever);
  // Single-lane config degenerates to the SystemDatabase model.
  ShardedDatabase legacy(legacy_config());
  SystemDatabase single;
  EXPECT_DOUBLE_EQ(legacy.estimated_latency(100.0),
                   single.estimated_latency(100.0));
}

}  // namespace
}  // namespace gpunion::db
