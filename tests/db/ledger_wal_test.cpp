// LedgerWal + ShardedDatabase crash recovery.
//
// The WAL contract under test: every mutation is appended to the durable
// log BEFORE its caller sees the ack, per-shard images advance only at
// commit time, and crash_and_recover() — image plus idempotent replay of
// WAL-ahead-of-shard records — rebuilds tables that equal the pre-crash
// live tables EXACTLY.  The oracle for "exactly" is a twin database fed
// the identical op sequence that never crashes; any divergence is a lost
// or duplicated acked write.  Also covers the armed fault points
// (skipped shard commit, torn group commit) and the contention-aware
// adaptive flush pacing.
#include "db/ledger_wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/sharded_database.h"
#include "util/rng.h"

namespace gpunion::db {
namespace {

NodeRecord node(const std::string& id) {
  NodeRecord record;
  record.machine_id = id;
  record.hostname = "host-" + id;
  record.gpu_count = 2;
  return record;
}

DbConfig wal_config(std::size_t threshold = 1000) {
  DbConfig config;
  config.shard_count = 4;
  config.write_behind = true;
  config.flush_threshold = threshold;
  return config;
}

/// A key routed to the requested shard (by probing the deterministic hash).
std::string key_on_shard(const ShardedDatabase& db, std::size_t shard) {
  for (int i = 0; i < 256; ++i) {
    const std::string candidate = "key-" + std::to_string(i);
    if (db.shard_for_job(candidate) == shard) return candidate;
  }
  ADD_FAILURE() << "no key found for shard " << shard;
  return "key-0";
}

/// Full-table equality between two databases (the subject crashed and
/// recovered mid-sequence; the oracle never did).
void expect_tables_equal(ShardedDatabase& subject, ShardedDatabase& oracle,
                         const std::string& context) {
  SCOPED_TRACE(context);
  // Node registry.
  const auto subject_nodes = subject.nodes();
  const auto oracle_nodes = oracle.nodes();
  ASSERT_EQ(subject_nodes.size(), oracle_nodes.size());
  for (const NodeRecord& expected : oracle_nodes) {
    auto got = subject.node(expected.machine_id);
    ASSERT_TRUE(got.ok()) << expected.machine_id;
    EXPECT_EQ(got->hostname, expected.hostname);
    EXPECT_EQ(got->status, expected.status);
    EXPECT_EQ(got->last_heartbeat, expected.last_heartbeat);
  }
  // Allocation ledger: recovery re-materializes it from allocation-id keys,
  // and ids are assigned in insertion order, so even the ORDER must match.
  const auto& subject_ledger = subject.allocation_ledger();
  const auto& oracle_ledger = oracle.allocation_ledger();
  ASSERT_EQ(subject_ledger.size(), oracle_ledger.size());
  for (std::size_t i = 0; i < oracle_ledger.size(); ++i) {
    EXPECT_EQ(subject_ledger[i].allocation_id, oracle_ledger[i].allocation_id);
    EXPECT_EQ(subject_ledger[i].job_id, oracle_ledger[i].job_id);
    EXPECT_EQ(subject_ledger[i].machine_id, oracle_ledger[i].machine_id);
    EXPECT_EQ(subject_ledger[i].outcome, oracle_ledger[i].outcome);
  }
  // Pending queue depth (contents are compared by the caller's final
  // drain — popping here would perturb the sequence).
  EXPECT_EQ(subject.queue_depth(), oracle.queue_depth());
  // Provenance log.
  EXPECT_EQ(subject.provenance_log().size(), oracle.provenance_log().size());
  // Durable control-plane tables.
  const auto subject_states = subject.job_states();
  const auto oracle_states = oracle.job_states();
  ASSERT_EQ(subject_states.size(), oracle_states.size());
  for (const JobStateRecord& expected : oracle_states) {
    const JobStateRecord* got = subject.job_state(expected.job_id);
    ASSERT_NE(got, nullptr) << expected.job_id;
    EXPECT_EQ(got->phase, expected.phase);
    EXPECT_EQ(got->node, expected.node);
    EXPECT_EQ(got->open_allocation, expected.open_allocation);
  }
  EXPECT_EQ(subject.forward_states().size(), oracle.forward_states().size());
  EXPECT_EQ(subject.handoffs().size(), oracle.handoffs().size());
}

TEST(LedgerWalTest, AppendsBeforeAckAndTruncatesAtFlush) {
  ShardedDatabase db(wal_config());
  ASSERT_TRUE(db.upsert_node(node("m-0")).is_ok());
  // The synchronous registry write advanced its shard image at call time,
  // so nothing is pending in the log.
  EXPECT_EQ(db.wal().depth(), 0u);
  EXPECT_EQ(db.wal().stats().appended, 1u);

  // Ledgered (write-behind) mutations sit in the WAL until the group
  // commit: acked to the caller, durable only as log records.
  const std::uint64_t allocation =
      db.open_allocation("job-a", "m-0", {0}, 1.0);
  db.enqueue_request({"job-b", 0, 1.0});
  db.record_provenance({"job-a", "west", "west", 1.0, ""});
  EXPECT_EQ(db.wal().depth(), 3u);
  EXPECT_EQ(db.durable_image().allocations.count(allocation), 0u)
      << "image advanced before the group commit";

  // The group commit advances every touched shard and truncates the
  // applied prefix.
  EXPECT_EQ(db.flush_ledger(), 3u);
  EXPECT_EQ(db.wal().depth(), 0u);
  EXPECT_EQ(db.wal().stats().truncated, db.wal().stats().appended);
  EXPECT_EQ(db.durable_image().allocations.count(allocation), 1u);
}

TEST(LedgerWalTest, RecoveryReplaysExactlyTheUnflushedSuffix) {
  ShardedDatabase db(wal_config());
  ASSERT_TRUE(db.upsert_node(node("m-0")).is_ok());
  db.open_allocation("job-a", "m-0", {0}, 1.0);
  db.enqueue_request({"job-b", 0, 1.0});
  db.flush_ledger();
  // Two more acked-but-unflushed mutations: the crash exposure.
  db.open_allocation("job-c", "m-0", {1}, 2.0);
  db.record_provenance({"job-c", "west", "west", 2.0, ""});
  ASSERT_EQ(db.wal().depth(), 2u);

  const RecoveryReport report = db.crash_and_recover();
  EXPECT_EQ(report.wal_depth_at_crash, 2u);
  EXPECT_EQ(report.replayed, 2u);
  EXPECT_EQ(report.skipped_applied, 0u);
  EXPECT_EQ(report.allocations, 2u);
  EXPECT_EQ(report.queue_rows, 1u);
  // The acked writes survived the crash.
  EXPECT_EQ(db.allocations_for_job("job-c").size(), 1u);
  EXPECT_NE(db.provenance("job-c"), nullptr);
  EXPECT_EQ(db.queue_depth(), 1u);
  EXPECT_EQ(db.wal().stats().recoveries, 1u);
  EXPECT_EQ(db.wal().stats().replayed, 2u);
}

TEST(LedgerWalTest, SkippedShardCommitRetriesAtNextFlush) {
  ShardedDatabase db(wal_config());
  const std::string key = key_on_shard(db, 2);
  ASSERT_TRUE(db.upsert_node(node("m-0")).is_ok());
  db.enqueue_request({key, 0, 1.0});  // job-keyed: owned by shard 2
  db.arm_commit_failure(2);
  db.flush_ledger();
  EXPECT_EQ(db.commit_failures(), 1u);
  // The record stayed in the log (its shard never applied it) and the
  // caller-visible table is untouched.
  EXPECT_GE(db.wal().depth(), 1u);
  EXPECT_EQ(db.queue_depth(), 1u);
  // The next flush is the retry.
  db.flush_ledger();
  EXPECT_EQ(db.wal().depth(), 0u);
  EXPECT_EQ(db.durable_image().queue_rows(), 1u);
}

TEST(LedgerWalTest, TornGroupCommitHealsIdempotently) {
  ShardedDatabase subject(wal_config());
  ShardedDatabase oracle(wal_config());
  // One ledgered row per shard, so the torn commit genuinely tears.
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const std::string key = key_on_shard(subject, shard);
    subject.enqueue_request({key, 0, 1.0});
    oracle.enqueue_request({key, 0, 1.0});
  }
  // Stop the group commit after two shard images advanced; the WAL is
  // deliberately NOT truncated — the exact torn state a crash leaves.
  subject.arm_flush_crash(2);
  subject.flush_ledger();
  ASSERT_TRUE(subject.flush_interrupted());
  ASSERT_EQ(subject.wal().depth(), 4u);

  const RecoveryReport report = subject.crash_and_recover();
  // Replay walked all four records but applied only the ones ahead of
  // their shard's watermark — idempotence across the tear.
  EXPECT_EQ(report.wal_depth_at_crash, 4u);
  EXPECT_EQ(report.replayed, 2u);
  EXPECT_EQ(report.skipped_applied, 2u);
  oracle.flush_ledger();
  expect_tables_equal(subject, oracle, "after torn-commit recovery");
}

// Randomized subject-vs-oracle sweep: identical op sequences, with the
// subject crashing (including via the armed fault points) at random cuts.
// Any divergence means an acked mutation was lost or double-applied.
TEST(LedgerWalTest, RandomizedCrashEqualsOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    ShardedDatabase subject(wal_config(/*threshold=*/24));
    ShardedDatabase oracle(wal_config(/*threshold=*/24));
    std::vector<std::uint64_t> open_allocations;
    int next_id = 0;
    double now = 0;
    for (int op = 0; op < 120; ++op) {
      now += 0.25;
      switch (rng.uniform_int(0, 7)) {
        case 0: {
          const std::string id = "m-" + std::to_string(rng.uniform_int(0, 9));
          ASSERT_TRUE(subject.upsert_node(node(id)).is_ok());
          ASSERT_TRUE(oracle.upsert_node(node(id)).is_ok());
          break;
        }
        case 1: {
          const std::string job = "job-" + std::to_string(next_id++);
          const std::string machine =
              "m-" + std::to_string(rng.uniform_int(0, 9));
          open_allocations.push_back(
              subject.open_allocation(job, machine, {0}, now));
          ASSERT_EQ(oracle.open_allocation(job, machine, {0}, now),
                    open_allocations.back());
          break;
        }
        case 2: {
          if (open_allocations.empty()) break;
          const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(open_allocations.size() - 1)));
          const std::uint64_t id = open_allocations[pick];
          open_allocations.erase(open_allocations.begin() +
                                 static_cast<std::ptrdiff_t>(pick));
          ASSERT_TRUE(subject
                          .close_allocation(
                              id, AllocationOutcome::kCompleted, now)
                          .is_ok());
          ASSERT_TRUE(oracle
                          .close_allocation(
                              id, AllocationOutcome::kCompleted, now)
                          .is_ok());
          break;
        }
        case 3: {
          const PendingRequest request{
              "job-" + std::to_string(next_id++),
              static_cast<int>(rng.uniform_int(0, 2)), now};
          subject.enqueue_request(request);
          oracle.enqueue_request(request);
          break;
        }
        case 4: {
          const auto a = subject.pop_request();
          const auto b = oracle.pop_request();
          ASSERT_EQ(a.has_value(), b.has_value());
          if (a.has_value()) {
            EXPECT_EQ(a->job_id, b->job_id);
          }
          break;
        }
        case 5: {
          JobStateRecord record;
          record.job_id = "job-" + std::to_string(rng.uniform_int(0, 30));
          record.phase = static_cast<int>(rng.uniform_int(0, 5));
          record.node = "m-" + std::to_string(rng.uniform_int(0, 9));
          subject.put_job_state(record);
          oracle.put_job_state(record);
          break;
        }
        case 6: {
          std::vector<std::int64_t> blob{
              rng.uniform_int(0, 1000), rng.uniform_int(0, 1000)};
          subject.put_journal("stats", blob);
          oracle.put_journal("stats", std::move(blob));
          break;
        }
        default: {
          subject.record_provenance(
              {"job-" + std::to_string(rng.uniform_int(0, 30)), "west",
               "east", now, "west>east"});
          oracle.record_provenance(
              {"job-" + std::to_string(rng.uniform_int(0, 30)), "west",
               "east", now, "west>east"});
          break;
        }
      }
      // Random cuts: flushes, armed faults, crashes — subject only.  The
      // flush on both sides keeps the THRESHOLD trigger aligned, but the
      // subject's extra faults/crashes must not matter for table contents.
      if (rng.bernoulli(0.10)) {
        subject.flush_ledger();
        oracle.flush_ledger();
      }
      if (rng.bernoulli(0.08)) {
        if (rng.bernoulli(0.3)) {
          subject.arm_commit_failure(static_cast<std::size_t>(
              rng.uniform_int(0, subject.shard_count() - 1)));
          subject.flush_ledger();
        } else if (rng.bernoulli(0.3)) {
          subject.arm_flush_crash(static_cast<std::size_t>(
              rng.uniform_int(0, subject.shard_count() - 1)));
          subject.flush_ledger();
        }
        (void)subject.crash_and_recover();
        expect_tables_equal(subject, oracle,
                            "after crash at op " + std::to_string(op));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    (void)subject.crash_and_recover();
    expect_tables_equal(subject, oracle, "final");
    // Drain both queues and compare the exact pop order.
    while (true) {
      const auto a = subject.pop_request();
      const auto b = oracle.pop_request();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) break;
      EXPECT_EQ(a->job_id, b->job_id);
      EXPECT_EQ(a->priority, b->priority);
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(LedgerWalTest, AdaptiveFlushPacesWithLogDepth) {
  DbConfig config = wal_config(/*threshold=*/32);
  config.adaptive_flush = true;
  config.flush_interval_min = 0.5;
  config.flush_interval_max = 8.0;
  ShardedDatabase db(config);
  // Idle log: stretch to the ceiling.
  EXPECT_DOUBLE_EQ(db.recommended_flush_interval(), 8.0);
  // Fill toward the knee (half the threshold): the recommendation must
  // fall monotonically to the floor.
  double last = db.recommended_flush_interval();
  for (int i = 0; i < 16; ++i) {
    db.enqueue_request({"job-" + std::to_string(i), 0, 1.0});
    const double now = db.recommended_flush_interval();
    EXPECT_LE(now, last) << "recommendation rose as the log filled (" << i
                         << " entries)";
    last = now;
  }
  // At/past the knee: the floor.
  EXPECT_DOUBLE_EQ(db.recommended_flush_interval(), 0.5);
  // A flush empties the log and the recommendation relaxes again.
  db.flush_ledger();
  EXPECT_DOUBLE_EQ(db.recommended_flush_interval(), 8.0);

  // Adaptation off: the fixed interval, regardless of depth.
  ShardedDatabase fixed(wal_config(/*threshold=*/32));
  EXPECT_DOUBLE_EQ(fixed.recommended_flush_interval(), 2.0);
  for (int i = 0; i < 16; ++i) {
    fixed.enqueue_request({"job-" + std::to_string(i), 0, 1.0});
  }
  EXPECT_DOUBLE_EQ(fixed.recommended_flush_interval(), 2.0);
}

}  // namespace
}  // namespace gpunion::db
