#include "hw/node.h"

#include <gtest/gtest.h>

namespace gpunion::hw {
namespace {

TEST(NodeModelTest, FleetBuilders) {
  NodeModel ws(workstation_3090("ws-0"));
  EXPECT_EQ(ws.gpu_count(), 1u);
  NodeModel big(server_8x4090("srv-0"));
  EXPECT_EQ(big.gpu_count(), 8u);
  NodeModel a100(server_2xa100("srv-1"));
  EXPECT_EQ(a100.gpu_count(), 2u);
  EXPECT_DOUBLE_EQ(a100.gpu(0).spec().memory_gb, 80.0);
  NodeModel a6000(server_4xa6000("srv-2"));
  EXPECT_EQ(a6000.gpu_count(), 4u);
}

TEST(NodeModelTest, FindGpusRespectsConstraints) {
  NodeModel node(server_2xa100("srv"));
  auto found = node.find_gpus(1, 40.0, 8.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), 1u);
  // A100 is CC 8.0; requiring 8.6 must fail.
  EXPECT_FALSE(node.find_gpus(1, 40.0, 8.6).has_value());
  // More memory than any device.
  EXPECT_FALSE(node.find_gpus(1, 200.0, 7.0).has_value());
  // More GPUs than the node has.
  EXPECT_FALSE(node.find_gpus(3, 10.0, 7.0).has_value());
}

TEST(NodeModelTest, AllocateReleaseCycle) {
  NodeModel node(server_8x4090("srv"));
  auto gpus = node.find_gpus(2, 10.0, 8.0);
  ASSERT_TRUE(gpus.has_value());
  ASSERT_TRUE(node.allocate(*gpus, "job-1", 10.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(node.free_gpu_count(), 6);
  EXPECT_DOUBLE_EQ(node.busy_fraction(), 0.25);
  EXPECT_EQ(node.release("job-1", 1.0), 2);
  EXPECT_EQ(node.free_gpu_count(), 8);
}

TEST(NodeModelTest, DoubleAllocateRejected) {
  NodeModel node(workstation_3090("ws"));
  ASSERT_TRUE(node.allocate({0}, "job-1", 8.0, 0.9, 0.0).is_ok());
  auto again = node.allocate({0}, "job-2", 8.0, 0.9, 0.0);
  EXPECT_EQ(again.code(), util::StatusCode::kFailedPrecondition);
}

TEST(NodeModelTest, AllocateValidatesIndices) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_EQ(node.allocate({5}, "job", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(node.allocate({}, "job", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(NodeModelTest, AllocateValidatesMemory) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_EQ(node.allocate({0}, "job", 48.0, 0.9, 0.0).code(),
            util::StatusCode::kResourceExhausted);
}

TEST(NodeModelTest, ReleaseUnknownWorkloadIsZero) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_EQ(node.release("ghost", 0.0), 0);
}

TEST(NodeModelTest, FreeGpusListsIndices) {
  NodeModel node(server_4xa6000("srv"));
  ASSERT_TRUE(node.allocate({1, 2}, "job", 10.0, 0.5, 0.0).is_ok());
  EXPECT_EQ(node.free_gpus(), (std::vector<int>{0, 3}));
}

TEST(NodeModelTest, SharedSlotsPackOntoOneDevice) {
  NodeModel node(server_4xa6000("srv"));  // 48 GB, 4 slots -> 12 GB cap
  EXPECT_DOUBLE_EQ(node.share_memory_cap(0), 12.0);
  auto first = node.find_share_slot(8.0, 8.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(node.allocate_shared(*first, "t-1", 8.0, 0.5, 0.0).is_ok());
  // The next tenant packs onto the same (most-occupied) device.
  auto second = node.find_share_slot(8.0, 8.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
  ASSERT_TRUE(node.allocate_shared(*second, "t-2", 8.0, 0.5, 0.0).is_ok());
  EXPECT_EQ(node.gpu(static_cast<std::size_t>(*first)).holder_count(), 2);
  // Whole-device pool shrank by one; shared slots opened.
  EXPECT_EQ(node.free_gpu_count(), 3);
  EXPECT_EQ(node.free_shared_slot_count(), 2);
  // A shared device is not free for exclusive allocation.
  EXPECT_EQ(node.allocate({*first}, "whole", 10.0, 0.9, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  // Releasing both tenants returns the device to the whole pool.
  EXPECT_EQ(node.release("t-1", 1.0), 1);
  EXPECT_EQ(node.release("t-2", 1.0), 1);
  EXPECT_EQ(node.free_gpu_count(), 4);
  EXPECT_EQ(node.free_shared_slot_count(), 0);
}

TEST(NodeModelTest, SharedSlotCountAndMemoryLimitsEnforced) {
  NodeSpec spec = workstation_3090("ws");  // 24 GB, 4 slots -> 6 GB cap
  NodeModel node(spec);
  // Per-tenant cap enforced.
  EXPECT_EQ(node.allocate_shared(0, "fat", 10.0, 0.5, 0.0).code(),
            util::StatusCode::kResourceExhausted);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        node.allocate_shared(0, "t-" + std::to_string(i), 6.0, 0.5, 0.0)
            .is_ok());
  }
  // Slot count exhausted: the fifth tenant is denied.
  EXPECT_EQ(node.allocate_shared(0, "t-5", 1.0, 0.5, 0.0).code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_FALSE(node.find_share_slot(1.0, 7.0).has_value());
  // Utilization saturates instead of exceeding 1.
  EXPECT_LE(node.gpu(0).utilization(), 1.0);
}

TEST(NodeModelTest, SharingDisabledBySpec) {
  NodeSpec spec = workstation_3090("ws");
  spec.share_slots_per_gpu = 1;
  NodeModel node(spec);
  EXPECT_FALSE(node.find_share_slot(4.0, 7.0).has_value());
  EXPECT_EQ(node.allocate_shared(0, "t", 4.0, 0.5, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(node.free_shared_slot_count(), 0);
}

TEST(NodeModelTest, ExclusiveDeviceRejectsSharedTenant) {
  NodeModel node(workstation_3090("ws"));
  ASSERT_TRUE(node.allocate({0}, "whole", 8.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(node.allocate_shared(0, "t", 4.0, 0.5, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(node.find_share_slot(4.0, 7.0).has_value());
}

TEST(NodeModelTest, BusyFractionWeightsSharedSlots) {
  // Regression: a shared GPU with 1 of 4 occupied slots used to count as
  // 100% busy — exactly where sharing is supposed to show headroom.
  NodeModel node(server_4xa6000("srv"));  // 4 GPUs, 4 slots each
  ASSERT_TRUE(node.allocate_shared(0, "t-1", 8.0, 0.5, 0.0).is_ok());
  EXPECT_DOUBLE_EQ(node.busy_fraction(), 0.25 / 4.0);  // 1 slot of 16
  ASSERT_TRUE(node.allocate_shared(0, "t-2", 8.0, 0.5, 0.0).is_ok());
  EXPECT_DOUBLE_EQ(node.busy_fraction(), 0.5 / 4.0);
  // An exclusive device still counts as fully busy.
  ASSERT_TRUE(node.allocate({1}, "whole", 10.0, 0.9, 0.0).is_ok());
  EXPECT_DOUBLE_EQ(node.busy_fraction(), 1.5 / 4.0);
}

TEST(NodeModelTest, TimesliceSeatsPackAndHonourOversubRatio) {
  NodeSpec spec = server_4xa6000("srv");  // 48 GB devices
  spec.timeslice_tenants_per_gpu = 3;
  spec.timeslice_oversub_ratio = 2.0;  // up to 96 GB of working sets
  NodeModel node(spec);
  auto first = node.find_timeslice_slot(40.0, 8.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(node.allocate_timeslice(*first, "t-1", 40.0, 0.9, 0.0).is_ok());
  // The next tenant packs onto the same device.
  auto second = node.find_timeslice_slot(40.0, 8.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
  ASSERT_TRUE(node.allocate_timeslice(*second, "t-2", 40.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(node.free_gpu_count(), 3);
  EXPECT_EQ(node.free_timeslice_slot_count(), 1);
  // 40 + 40 + 40 > 96: the ratio forces the third big tenant elsewhere.
  auto third = node.find_timeslice_slot(40.0, 8.0);
  ASSERT_TRUE(third.has_value());
  EXPECT_NE(*third, *first);
  EXPECT_EQ(node.allocate_timeslice(*first, "t-3", 40.0, 0.9, 0.0).code(),
            util::StatusCode::kResourceExhausted);
  // A small working set still fits under the ratio on the packed device.
  ASSERT_TRUE(node.allocate_timeslice(*first, "t-4", 10.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(node.free_timeslice_slot_count(), 0);
  // A time-sliced device hosts neither spatial tenants nor exclusive jobs.
  EXPECT_EQ(node.allocate_shared(*first, "s", 4.0, 0.5, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(node.allocate({*first}, "whole", 10.0, 0.9, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(node.free_shared_slot_count(), 0);
  // Busy fraction is residency-weighted: 1 of 4 devices has a resident.
  EXPECT_DOUBLE_EQ(node.busy_fraction(), 0.25);
}

TEST(NodeModelTest, TimesliceDisabledBySpecDefault) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_FALSE(node.find_timeslice_slot(8.0, 7.0).has_value());
  EXPECT_EQ(node.allocate_timeslice(0, "t", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(node.free_timeslice_slot_count(), 0);
}

}  // namespace
}  // namespace gpunion::hw
