#include "hw/node.h"

#include <gtest/gtest.h>

namespace gpunion::hw {
namespace {

TEST(NodeModelTest, FleetBuilders) {
  NodeModel ws(workstation_3090("ws-0"));
  EXPECT_EQ(ws.gpu_count(), 1u);
  NodeModel big(server_8x4090("srv-0"));
  EXPECT_EQ(big.gpu_count(), 8u);
  NodeModel a100(server_2xa100("srv-1"));
  EXPECT_EQ(a100.gpu_count(), 2u);
  EXPECT_DOUBLE_EQ(a100.gpu(0).spec().memory_gb, 80.0);
  NodeModel a6000(server_4xa6000("srv-2"));
  EXPECT_EQ(a6000.gpu_count(), 4u);
}

TEST(NodeModelTest, FindGpusRespectsConstraints) {
  NodeModel node(server_2xa100("srv"));
  auto found = node.find_gpus(1, 40.0, 8.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), 1u);
  // A100 is CC 8.0; requiring 8.6 must fail.
  EXPECT_FALSE(node.find_gpus(1, 40.0, 8.6).has_value());
  // More memory than any device.
  EXPECT_FALSE(node.find_gpus(1, 200.0, 7.0).has_value());
  // More GPUs than the node has.
  EXPECT_FALSE(node.find_gpus(3, 10.0, 7.0).has_value());
}

TEST(NodeModelTest, AllocateReleaseCycle) {
  NodeModel node(server_8x4090("srv"));
  auto gpus = node.find_gpus(2, 10.0, 8.0);
  ASSERT_TRUE(gpus.has_value());
  ASSERT_TRUE(node.allocate(*gpus, "job-1", 10.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(node.free_gpu_count(), 6);
  EXPECT_DOUBLE_EQ(node.busy_fraction(), 0.25);
  EXPECT_EQ(node.release("job-1", 1.0), 2);
  EXPECT_EQ(node.free_gpu_count(), 8);
}

TEST(NodeModelTest, DoubleAllocateRejected) {
  NodeModel node(workstation_3090("ws"));
  ASSERT_TRUE(node.allocate({0}, "job-1", 8.0, 0.9, 0.0).is_ok());
  auto again = node.allocate({0}, "job-2", 8.0, 0.9, 0.0);
  EXPECT_EQ(again.code(), util::StatusCode::kFailedPrecondition);
}

TEST(NodeModelTest, AllocateValidatesIndices) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_EQ(node.allocate({5}, "job", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(node.allocate({}, "job", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(NodeModelTest, AllocateValidatesMemory) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_EQ(node.allocate({0}, "job", 48.0, 0.9, 0.0).code(),
            util::StatusCode::kResourceExhausted);
}

TEST(NodeModelTest, ReleaseUnknownWorkloadIsZero) {
  NodeModel node(workstation_3090("ws"));
  EXPECT_EQ(node.release("ghost", 0.0), 0);
}

TEST(NodeModelTest, FreeGpusListsIndices) {
  NodeModel node(server_4xa6000("srv"));
  ASSERT_TRUE(node.allocate({1, 2}, "job", 10.0, 0.5, 0.0).is_ok());
  EXPECT_EQ(node.free_gpus(), (std::vector<int>{0, 3}));
}

}  // namespace
}  // namespace gpunion::hw
