#include "hw/telemetry.h"

#include <gtest/gtest.h>

namespace gpunion::hw {
namespace {

TEST(TelemetryTest, SamplesEveryGpu) {
  NodeModel node(server_8x4090("srv"));
  NvmlSampler sampler(node, util::Rng(1));
  const NodeTelemetry t = sampler.sample(0.0);
  EXPECT_EQ(t.gpus.size(), 8u);
  EXPECT_DOUBLE_EQ(t.sampled_at, 0.0);
  for (const auto& gpu : t.gpus) {
    EXPECT_DOUBLE_EQ(gpu.memory_total_gb, 24.0);
    EXPECT_GE(gpu.utilization_pct, 0.0);
    EXPECT_LE(gpu.utilization_pct, 100.0);
  }
}

TEST(TelemetryTest, BusyGpuShowsUtilizationAndMemory) {
  NodeModel node(workstation_3090("ws"));
  ASSERT_TRUE(node.allocate({0}, "job", 12.0, 0.9, 0.0).is_ok());
  NvmlSampler sampler(node, util::Rng(2));
  const NodeTelemetry t = sampler.sample(10.0);
  ASSERT_EQ(t.gpus.size(), 1u);
  EXPECT_NEAR(t.gpus[0].utilization_pct, 90.0, 10.0);
  EXPECT_DOUBLE_EQ(t.gpus[0].memory_used_gb, 12.0);
  EXPECT_GT(t.gpus[0].power_watts, 200.0);
}

TEST(TelemetryTest, MeanUtilAcrossGpus) {
  NodeModel node(server_2xa100("srv"));
  ASSERT_TRUE(node.allocate({0}, "job", 40.0, 1.0, 0.0).is_ok());
  NvmlSampler sampler(node, util::Rng(3));
  const NodeTelemetry t = sampler.sample(1.0);
  // One of two GPUs at ~100%: mean near 50%.
  EXPECT_NEAR(t.mean_gpu_utilization(), 50.0, 8.0);
}

TEST(TelemetryTest, DeterministicGivenSeed) {
  NodeModel node(workstation_3090("ws"));
  NvmlSampler a(node, util::Rng(7));
  NvmlSampler b(node, util::Rng(7));
  EXPECT_DOUBLE_EQ(a.sample(5.0).gpus[0].temperature_c,
                   b.sample(5.0).gpus[0].temperature_c);
}

TEST(TelemetryTest, CpuLoadBounded) {
  NodeModel node(server_8x4090("srv"));
  NvmlSampler sampler(node, util::Rng(9));
  for (int i = 0; i < 50; ++i) {
    const NodeTelemetry t = sampler.sample(i);
    EXPECT_GE(t.cpu_load, 0.0);
    EXPECT_LE(t.cpu_load, 1.0);
  }
}

}  // namespace
}  // namespace gpunion::hw
