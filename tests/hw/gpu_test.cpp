#include "hw/gpu.h"

#include <gtest/gtest.h>

namespace gpunion::hw {
namespace {

TEST(GpuSpecTest, CatalogMatchesDatasheets) {
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kRtx3090).memory_gb, 24.0);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kRtx4090).compute_capability, 8.9);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kA100).memory_gb, 80.0);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kA6000).memory_gb, 48.0);
  // The 4090 is the fastest FP32 part in the fleet.
  EXPECT_GT(gpu_spec(GpuArch::kRtx4090).fp32_tflops,
            gpu_spec(GpuArch::kA100).fp32_tflops);
}

TEST(GpuDeviceTest, AllocateRelease) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  EXPECT_FALSE(gpu.allocated());
  gpu.allocate("job-1", 8.0, 0.9, 0.0);
  EXPECT_TRUE(gpu.allocated());
  EXPECT_EQ(gpu.holder(), "job-1");
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 8.0);
  gpu.release(100.0);
  EXPECT_FALSE(gpu.allocated());
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 0.0);
}

TEST(GpuDeviceTest, IdlePowerAndLoadPower) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  EXPECT_DOUBLE_EQ(gpu.power_watts(), 25.0);
  gpu.allocate("job", 4.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(gpu.power_watts(), 350.0);
}

TEST(GpuDeviceTest, TemperatureRisesUnderLoad) {
  GpuDevice gpu(GpuArch::kRtx4090, 0);
  const double idle_temp = gpu.temperature_c(0.0);
  EXPECT_NEAR(idle_temp, 36.0, 0.5);
  gpu.allocate("job", 10.0, 1.0, 0.0);
  const double shortly = gpu.temperature_c(10.0);
  const double later = gpu.temperature_c(600.0);
  EXPECT_GT(shortly, idle_temp);
  EXPECT_GT(later, shortly);
  EXPECT_NEAR(later, 78.0, 1.0);  // steady state at full load
}

TEST(GpuDeviceTest, TemperatureCoolsAfterRelease) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  gpu.allocate("job", 4.0, 1.0, 0.0);
  const double hot = gpu.temperature_c(600.0);
  gpu.release(600.0);
  const double cooling = gpu.temperature_c(700.0);
  const double cold = gpu.temperature_c(2000.0);
  EXPECT_LT(cooling, hot);
  EXPECT_NEAR(cold, 36.0, 1.0);
}

TEST(GpuArchTest, Names) {
  EXPECT_EQ(gpu_arch_name(GpuArch::kRtx3090), "RTX3090");
  EXPECT_EQ(gpu_arch_name(GpuArch::kA100), "A100");
}

}  // namespace
}  // namespace gpunion::hw
