#include "hw/gpu.h"

#include <gtest/gtest.h>

namespace gpunion::hw {
namespace {

TEST(GpuSpecTest, CatalogMatchesDatasheets) {
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kRtx3090).memory_gb, 24.0);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kRtx4090).compute_capability, 8.9);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kA100).memory_gb, 80.0);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuArch::kA6000).memory_gb, 48.0);
  // The 4090 is the fastest FP32 part in the fleet.
  EXPECT_GT(gpu_spec(GpuArch::kRtx4090).fp32_tflops,
            gpu_spec(GpuArch::kA100).fp32_tflops);
}

TEST(GpuDeviceTest, AllocateRelease) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  EXPECT_FALSE(gpu.allocated());
  ASSERT_TRUE(gpu.allocate("job-1", 8.0, 0.9, 0.0).is_ok());
  EXPECT_TRUE(gpu.allocated());
  EXPECT_EQ(gpu.holder(), "job-1");
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 8.0);
  gpu.release(100.0);
  EXPECT_FALSE(gpu.allocated());
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 0.0);
}

TEST(GpuDeviceTest, AllocateRejectsOversizedFootprintAtRuntime) {
  // The VRAM-fit check must hold in release builds too (it used to be a
  // debug-only assert): a 30 GB footprint on a 24 GB 3090 is a checked
  // error, and the device stays free.
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  auto status = gpu.allocate("fat", 30.0, 0.9, 0.0);
  EXPECT_EQ(status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_FALSE(gpu.allocated());
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 0.0);
  // Double allocation and bad utilization are checked the same way.
  ASSERT_TRUE(gpu.allocate("job", 8.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(gpu.allocate("again", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  gpu.release(0.0);
  EXPECT_EQ(gpu.allocate("neg", 8.0, -0.5, 0.0).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(GpuDeviceTest, TimesliceResidencyControlsAggregates) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  ASSERT_TRUE(gpu.allocate_timeslice("a", 20.0, 0.9, 0.0).is_ok());
  ASSERT_TRUE(gpu.allocate_timeslice("b", 18.0, 0.8, 0.0).is_ok());
  EXPECT_TRUE(gpu.time_sliced());
  EXPECT_EQ(gpu.holder_count(), 2);
  // The first tenant is resident; only its working set is on-device even
  // though the total footprint oversubscribes VRAM.
  EXPECT_EQ(gpu.resident(), "a");
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 20.0);
  EXPECT_DOUBLE_EQ(gpu.tenant_memory_total_gb(), 38.0);
  ASSERT_TRUE(gpu.set_resident("b", 10.0).is_ok());
  EXPECT_DOUBLE_EQ(gpu.memory_used_gb(), 18.0);
  EXPECT_DOUBLE_EQ(gpu.utilization(), 0.8);
  // Residency is handed to a surviving tenant when the resident leaves.
  EXPECT_TRUE(gpu.release_holder("b", 20.0));
  EXPECT_EQ(gpu.resident(), "a");
  EXPECT_TRUE(gpu.release_holder("a", 30.0));
  EXPECT_FALSE(gpu.time_sliced());
  EXPECT_FALSE(gpu.allocated());
}

TEST(GpuDeviceTest, TimesliceModeExcludesOtherModes) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  ASSERT_TRUE(gpu.allocate_timeslice("a", 16.0, 0.9, 0.0).is_ok());
  EXPECT_EQ(gpu.allocate_shared("s", 4.0, 0.5, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(gpu.allocate("w", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
  // A single working set still has to fit the device.
  EXPECT_EQ(gpu.allocate_timeslice("huge", 30.0, 0.9, 0.0).code(),
            util::StatusCode::kResourceExhausted);
  gpu.release(0.0);
  ASSERT_TRUE(gpu.allocate_shared("s", 4.0, 0.5, 0.0).is_ok());
  EXPECT_EQ(gpu.allocate_timeslice("t", 8.0, 0.9, 0.0).code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(GpuDeviceTest, IdlePowerAndLoadPower) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  EXPECT_DOUBLE_EQ(gpu.power_watts(), 25.0);
  ASSERT_TRUE(gpu.allocate("job", 4.0, 1.0, 0.0).is_ok());
  EXPECT_DOUBLE_EQ(gpu.power_watts(), 350.0);
}

TEST(GpuDeviceTest, TemperatureRisesUnderLoad) {
  GpuDevice gpu(GpuArch::kRtx4090, 0);
  const double idle_temp = gpu.temperature_c(0.0);
  EXPECT_NEAR(idle_temp, 36.0, 0.5);
  ASSERT_TRUE(gpu.allocate("job", 10.0, 1.0, 0.0).is_ok());
  const double shortly = gpu.temperature_c(10.0);
  const double later = gpu.temperature_c(600.0);
  EXPECT_GT(shortly, idle_temp);
  EXPECT_GT(later, shortly);
  EXPECT_NEAR(later, 78.0, 1.0);  // steady state at full load
}

TEST(GpuDeviceTest, TemperatureCoolsAfterRelease) {
  GpuDevice gpu(GpuArch::kRtx3090, 0);
  ASSERT_TRUE(gpu.allocate("job", 4.0, 1.0, 0.0).is_ok());
  const double hot = gpu.temperature_c(600.0);
  gpu.release(600.0);
  const double cooling = gpu.temperature_c(700.0);
  const double cold = gpu.temperature_c(2000.0);
  EXPECT_LT(cooling, hot);
  EXPECT_NEAR(cold, 36.0, 1.0);
}

TEST(GpuArchTest, Names) {
  EXPECT_EQ(gpu_arch_name(GpuArch::kRtx3090), "RTX3090");
  EXPECT_EQ(gpu_arch_name(GpuArch::kA100), "A100");
}

}  // namespace
}  // namespace gpunion::hw
