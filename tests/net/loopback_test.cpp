#include "net/loopback_transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gpunion::net {
namespace {

TEST(LoopbackTest, ImmediateDelivery) {
  LoopbackTransport transport;
  std::vector<int> kinds;
  transport.register_endpoint("b", [&](Message&& m) {
    kinds.push_back(m.kind);
  });
  Message m;
  m.from = "a";
  m.to = "b";
  m.kind = 3;
  ASSERT_TRUE(transport.send(std::move(m)).is_ok());
  EXPECT_EQ(kinds, (std::vector<int>{3}));
}

TEST(LoopbackTest, DeferredQueuesUntilFlush) {
  LoopbackTransport transport(/*deferred=*/true);
  int delivered = 0;
  transport.register_endpoint("b", [&](Message&&) { ++delivered; });
  Message m;
  m.from = "a";
  m.to = "b";
  ASSERT_TRUE(transport.send(std::move(m)).is_ok());
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport.queued(), 1u);
  EXPECT_EQ(transport.flush(), 1u);
  EXPECT_EQ(delivered, 1);
}

TEST(LoopbackTest, FlushDeliversCascades) {
  LoopbackTransport transport(/*deferred=*/true);
  int b_count = 0, c_count = 0;
  transport.register_endpoint("c", [&](Message&&) { ++c_count; });
  transport.register_endpoint("b", [&](Message&& m) {
    ++b_count;
    Message next;
    next.from = m.to;
    next.to = "c";
    ASSERT_TRUE(transport.send(std::move(next)).is_ok());
  });
  Message m;
  m.from = "a";
  m.to = "b";
  ASSERT_TRUE(transport.send(std::move(m)).is_ok());
  EXPECT_EQ(transport.flush(), 2u);  // b then the cascaded c
  EXPECT_EQ(b_count, 1);
  EXPECT_EQ(c_count, 1);
}

TEST(LoopbackTest, UnknownDestination) {
  LoopbackTransport transport;
  Message m;
  m.to = "ghost";
  EXPECT_EQ(transport.send(std::move(m)).code(),
            util::StatusCode::kNotFound);
}

TEST(LoopbackTest, UnregisterDropsQueued) {
  LoopbackTransport transport(/*deferred=*/true);
  int delivered = 0;
  transport.register_endpoint("b", [&](Message&&) { ++delivered; });
  Message m;
  m.to = "b";
  ASSERT_TRUE(transport.send(std::move(m)).is_ok());
  transport.unregister_endpoint("b");
  transport.flush();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(transport.dropped(), 1u);
}

TEST(LoopbackTest, PayloadRoundTrip) {
  LoopbackTransport transport;
  std::string seen;
  transport.register_endpoint("b", [&](Message&& m) {
    seen = std::any_cast<std::string>(m.payload);
  });
  Message m;
  m.to = "b";
  m.payload = std::string("typed payload");
  ASSERT_TRUE(transport.send(std::move(m)).is_ok());
  EXPECT_EQ(seen, "typed payload");
}

}  // namespace
}  // namespace gpunion::net
