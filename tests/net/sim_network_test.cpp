#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gpunion::net {
namespace {

struct Fixture {
  sim::Environment env{1};
  SimNetwork net{env, {}};
  std::vector<Message> received;

  void attach(const NodeId& id) {
    net.register_endpoint(id, [this](Message&& m) {
      received.push_back(std::move(m));
    });
  }
};

TEST(SimNetworkTest, DeliversWithLatency) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 100;
  m.kind = 7;
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  EXPECT_TRUE(f.received.empty());  // not synchronous
  f.env.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].kind, 7);
  EXPECT_GT(f.env.now(), 0.0);      // latency elapsed
  EXPECT_LT(f.env.now(), 0.01);     // but small for 100 bytes on a LAN
}

TEST(SimNetworkTest, UnknownDestinationFails) {
  Fixture f;
  f.attach("a");
  Message m;
  m.from = "a";
  m.to = "ghost";
  EXPECT_EQ(f.net.send(std::move(m)).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(f.net.messages_dropped(), 1u);
}

TEST(SimNetworkTest, LargeTransferTakesBandwidthTime) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 1250000000ULL;  // 1.25 GB == 10 s on a 1 Gbps access link
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  f.env.run();
  EXPECT_GT(f.env.now(), 10.0);
  EXPECT_LT(f.env.now(), 13.0);  // + backbone (1s at 10 Gbps) + dst link
}

TEST(SimNetworkTest, ConcurrentTransfersQueueOnLink) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  for (int i = 0; i < 2; ++i) {
    Message m;
    m.from = "a";
    m.to = "b";
    m.traffic_class = TrafficClass::kMigration;  // bulk: subject to queueing
    m.size_bytes = 125000000ULL;  // 1 s each on the 1 Gbps source link
    ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  }
  f.env.run();
  ASSERT_EQ(f.received.size(), 2u);
  EXPECT_GT(f.env.now(), 2.0);  // serialized, not parallel
}

TEST(SimNetworkTest, ControlPlaneBypassesBulkQueue) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  Message bulk;
  bulk.from = "a";
  bulk.to = "b";
  bulk.traffic_class = TrafficClass::kMigration;
  bulk.size_bytes = 1250000000ULL;  // 10 s on the access link
  ASSERT_TRUE(f.net.send(std::move(bulk)).is_ok());
  Message control;
  control.from = "a";
  control.to = "b";
  control.traffic_class = TrafficClass::kControl;
  control.size_bytes = 300;
  control.kind = 42;
  ASSERT_TRUE(f.net.send(std::move(control)).is_ok());
  f.env.run(1);  // first delivery
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].kind, 42);  // control message arrived first
  EXPECT_LT(f.env.now(), 0.1);
}

TEST(SimNetworkTest, PartitionDropsSilently) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  f.net.set_partitioned("b", true);
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 10;
  EXPECT_TRUE(f.net.send(std::move(m)).is_ok());  // no error: silent loss
  f.env.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.messages_dropped(), 1u);
}

TEST(SimNetworkTest, PartitionHealsAndDelivers) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  f.net.set_partitioned("b", true);
  f.net.set_partitioned("b", false);
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 10;
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  f.env.run();
  EXPECT_EQ(f.received.size(), 1u);
}

TEST(SimNetworkTest, InFlightDroppedWhenEndpointUnregisters) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 125000000ULL;  // ~1s in flight
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  f.net.unregister_endpoint("b");
  f.env.run();
  EXPECT_TRUE(f.received.empty());
  EXPECT_EQ(f.net.messages_dropped(), 1u);
}

TEST(SimNetworkTest, AccountsBytesPerClass) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 1000;
  m.traffic_class = TrafficClass::kCheckpoint;
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  Message m2;
  m2.from = "a";
  m2.to = "b";
  m2.size_bytes = 500;
  m2.traffic_class = TrafficClass::kHeartbeat;
  ASSERT_TRUE(f.net.send(std::move(m2)).is_ok());
  f.env.run();
  EXPECT_EQ(f.net.bytes_sent(TrafficClass::kCheckpoint), 1000u);
  EXPECT_EQ(f.net.bytes_sent(TrafficClass::kHeartbeat), 500u);
  EXPECT_EQ(f.net.total_bytes_sent(), 1500u);
}

TEST(SimNetworkTest, PeakUtilizationReflectsBurst) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  // 10 Gbps backbone, 60 s buckets -> 75e9 bytes per bucket.  Migration
  // traffic is not paced: it transfers at link speed (1 Gbps access -> 60 s)
  // and lands almost entirely in the first bucket.
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 7500000000ULL;  // 10% of one bucket's capacity
  m.traffic_class = TrafficClass::kMigration;
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  f.env.run();
  const double peak = f.net.peak_backbone_utilization(0, 60);
  EXPECT_NEAR(peak, 0.10, 0.01);
}

TEST(SimNetworkTest, BackupPacingSpreadsCheckpointTraffic) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  // 7.5 GB of checkpoint data paced at 0.5 Gbps takes 120 s: the same
  // bytes spread over two buckets instead of bursting one.
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 7500000000ULL;
  m.traffic_class = TrafficClass::kCheckpoint;
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  f.env.run();
  EXPECT_GT(f.env.now(), 115.0);  // paced delivery
  const double peak =
      f.net.peak_class_utilization({TrafficClass::kCheckpoint}, 0, 180);
  EXPECT_NEAR(peak, 0.05, 0.005);  // half the bytes per bucket
  EXPECT_EQ(f.net.bytes_sent(TrafficClass::kCheckpoint), 7500000000ULL);
}

TEST(SimNetworkTest, PacedBackupDoesNotBlockBulk) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  Message backup;
  backup.from = "a";
  backup.to = "b";
  backup.traffic_class = TrafficClass::kCheckpoint;
  backup.size_bytes = 7500000000ULL;  // 120 s paced
  ASSERT_TRUE(f.net.send(std::move(backup)).is_ok());
  Message urgent;
  urgent.from = "a";
  urgent.to = "b";
  urgent.traffic_class = TrafficClass::kMigration;
  urgent.size_bytes = 125000000ULL;  // 1 s at line rate
  urgent.kind = 5;
  ASSERT_TRUE(f.net.send(std::move(urgent)).is_ok());
  f.env.run(1);
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].kind, 5);  // migration did not queue behind backup
  EXPECT_LT(f.env.now(), 2.0);
}

TEST(SimNetworkTest, RandomDropProbability) {
  sim::Environment env(7);
  SimNetworkConfig config;
  config.drop_probability = 1.0;  // always drop
  SimNetwork net(env, config);
  int delivered = 0;
  net.register_endpoint("b", [&](Message&&) { ++delivered; });
  net.register_endpoint("a", [](Message&&) {});
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 10;
  ASSERT_TRUE(net.send(std::move(m)).is_ok());
  env.run();
  EXPECT_EQ(delivered, 0);
}

TEST(SimNetworkTest, PerNodeAccessSpeedOverride) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  f.net.set_access_gbps("a", 10.0);
  f.net.set_access_gbps("b", 10.0);
  Message m;
  m.from = "a";
  m.to = "b";
  m.size_bytes = 1250000000ULL;  // 1 s at 10 Gbps per hop
  ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  f.env.run();
  EXPECT_LT(f.env.now(), 3.5);  // three 10 Gbps hops, not 10+ s
}

TEST(SimNetworkTest, PerPathLatencyOverridesBaseLatency) {
  // Asymmetric WAN distances: a-b stays at the default, a-c is far away.
  Fixture f;
  f.attach("a");
  f.attach("b");
  f.attach("c");
  f.net.set_path_latency("a", "c", 0.050);
  EXPECT_DOUBLE_EQ(f.net.path_latency("a", "b"),
                   f.net.config().base_latency);
  EXPECT_DOUBLE_EQ(f.net.path_latency("a", "c"), 0.050);
  EXPECT_DOUBLE_EQ(f.net.path_latency("c", "a"), 0.050);  // symmetric

  Message near;
  near.from = "a";
  near.to = "b";
  near.size_bytes = 100;
  ASSERT_TRUE(f.net.send(std::move(near)).is_ok());
  f.env.run();
  const util::SimTime near_arrival = f.env.now();
  Message far;
  far.from = "a";
  far.to = "c";
  far.size_bytes = 100;
  ASSERT_TRUE(f.net.send(std::move(far)).is_ok());
  f.env.run();
  const util::SimTime far_elapsed = f.env.now() - near_arrival;
  EXPECT_GE(far_elapsed, 0.050);
  EXPECT_LT(far_elapsed, 0.060);
  EXPECT_LT(near_arrival, 0.010);
}

TEST(SimNetworkTest, PathGbpsReportsBottleneck) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  f.net.set_access_gbps("a", 10.0);
  // b stays on the 1 Gbps default: the pair bottlenecks there.
  EXPECT_DOUBLE_EQ(f.net.path_gbps("a", "b"), 1.0);
  f.net.set_access_gbps("b", 40.0);
  // Now the 10 Gbps backbone-vs-access minimum wins.
  EXPECT_DOUBLE_EQ(f.net.path_gbps("a", "b"),
                   std::min(10.0, f.net.config().backbone_gbps));
  // Unknown endpoints are assumed on default access links.
  EXPECT_DOUBLE_EQ(f.net.path_gbps("ghost", "phantom"), 1.0);
}

TEST(SimNetworkTest, FederationBytesAccountedPerPeer) {
  Fixture f;
  f.attach("gw-a");
  f.attach("gw-b");
  f.attach("gw-c");
  auto send_fed = [&](const NodeId& from, const NodeId& to,
                      std::uint64_t bytes) {
    Message m;
    m.from = from;
    m.to = to;
    m.traffic_class = TrafficClass::kFederation;
    m.size_bytes = bytes;
    ASSERT_TRUE(f.net.send(std::move(m)).is_ok());
  };
  send_fed("gw-a", "gw-b", 1000);
  send_fed("gw-b", "gw-a", 500);  // same pair, reverse direction
  send_fed("gw-a", "gw-c", 70);
  // Non-federation traffic on the same pair stays out of the counters.
  Message bulk;
  bulk.from = "gw-a";
  bulk.to = "gw-b";
  bulk.traffic_class = TrafficClass::kUserData;
  bulk.size_bytes = 9999;
  ASSERT_TRUE(f.net.send(std::move(bulk)).is_ok());
  f.env.run();

  EXPECT_EQ(f.net.federation_bytes_between("gw-a", "gw-b"), 1500u);
  EXPECT_EQ(f.net.federation_bytes_between("gw-b", "gw-a"), 1500u);
  EXPECT_EQ(f.net.federation_bytes_between("gw-a", "gw-c"), 70u);
  EXPECT_EQ(f.net.federation_bytes_between("gw-b", "gw-c"), 0u);
  EXPECT_EQ(f.net.federation_peer_bytes().size(), 2u);
}

}  // namespace
}  // namespace gpunion::net
