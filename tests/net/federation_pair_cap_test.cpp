// Per-region-pair WAN byte caps (SimNetworkConfig::federation_pair_gbps):
// each endpoint pair gets its own capped circuit, so a saturated A<->B
// checkpoint shipment never queues C<->D digests — the isolation leased
// campus interconnects actually provide.  With the cap off, everything
// shares the single federation channel and DOES queue, which is the
// contrast each test pins down.
#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace gpunion::net {
namespace {

struct Fixture {
  explicit Fixture(SimNetworkConfig config) : net(env, config) {}

  void attach(const NodeId& id) {
    net.register_endpoint(id, [this, id](Message&& m) {
      delivered_at[id] = env.now();
      (void)m;
    });
  }

  void send(const NodeId& from, const NodeId& to, std::uint64_t bytes) {
    Message m;
    m.from = from;
    m.to = to;
    m.traffic_class = TrafficClass::kFederation;
    m.size_bytes = bytes;
    ASSERT_TRUE(net.send(std::move(m)).is_ok());
  }

  sim::Environment env{1};
  SimNetwork net;
  std::map<NodeId, double> delivered_at;  // keyed by RECEIVER
};

constexpr std::uint64_t kBigShipment = 1250000000ULL;  // 10 s at 1 Gbps
constexpr std::uint64_t kDigest = 260;

TEST(FederationPairCapTest, SaturatedPairDoesNotDelayOtherPairs) {
  SimNetworkConfig config;
  config.federation_wan_gbps = 1.0;
  config.federation_pair_gbps = 1.0;  // dedicated per-pair circuits
  Fixture f(config);
  for (const char* id : {"gw-a", "gw-b", "gw-c", "gw-d"}) f.attach(id);

  // A->B ships a checkpoint that pins its circuit for ~10 s; C->D sends a
  // digest immediately after.
  f.send("gw-a", "gw-b", kBigShipment);
  f.send("gw-c", "gw-d", kDigest);
  f.env.run();

  ASSERT_TRUE(f.delivered_at.count("gw-b"));
  ASSERT_TRUE(f.delivered_at.count("gw-d"));
  EXPECT_GT(f.delivered_at["gw-b"], 10.0);
  // The digest crossed on its own circuit, oblivious to the shipment.
  EXPECT_LT(f.delivered_at["gw-d"], 1.0)
      << "C->D digest queued behind the A->B shipment despite the per-pair "
         "cap";
}

TEST(FederationPairCapTest, SharedChannelQueuesAcrossPairsWhenCapIsOff) {
  SimNetworkConfig config;
  config.federation_wan_gbps = 1.0;
  config.federation_pair_gbps = 0.0;  // legacy shared channel
  Fixture f(config);
  for (const char* id : {"gw-a", "gw-b", "gw-c", "gw-d"}) f.attach(id);

  f.send("gw-a", "gw-b", kBigShipment);
  f.send("gw-c", "gw-d", kDigest);
  f.env.run();

  // FIFO within the shared class: the digest waits out the shipment.
  EXPECT_GT(f.delivered_at["gw-d"], 9.0)
      << "shared-channel baseline stopped queueing; the A/B contrast in "
         "this suite is meaningless";
}

TEST(FederationPairCapTest, CapBindsPerPairNotGlobally) {
  SimNetworkConfig config;
  config.federation_wan_gbps = 1.0;
  config.federation_pair_gbps = 1.0;
  Fixture f(config);
  for (const char* id : {"gw-a", "gw-b", "gw-c", "gw-d"}) f.attach(id);

  // Two saturating shipments on distinct pairs run CONCURRENTLY — each
  // finishes in its own ~10 s, not serialized to ~20 s.
  f.send("gw-a", "gw-b", kBigShipment);
  f.send("gw-c", "gw-d", kBigShipment);
  f.env.run();

  EXPECT_GT(f.delivered_at["gw-b"], 10.0);
  EXPECT_GT(f.delivered_at["gw-d"], 10.0);
  EXPECT_LT(f.delivered_at["gw-b"], 15.0);
  EXPECT_LT(f.delivered_at["gw-d"], 15.0);

  // Same pair still paces: a second shipment A->B queues behind the first.
  Fixture g(config);
  for (const char* id : {"gw-a", "gw-b"}) g.attach(id);
  g.send("gw-a", "gw-b", kBigShipment);
  g.send("gw-a", "gw-b", kBigShipment);
  g.env.run();
  EXPECT_GT(g.delivered_at["gw-b"], 20.0);
}

}  // namespace
}  // namespace gpunion::net
