// Traffic accounting: window queries, transmission spreading, the paced
// backup channel and its backlog signal.
#include <gtest/gtest.h>

#include "net/sim_network.h"

namespace gpunion::net {
namespace {

struct Fixture {
  sim::Environment env{3};
  SimNetwork net{env, {}};
  void attach(const NodeId& id) {
    net.register_endpoint(id, [](Message&&) {});
  }
  void send(TrafficClass klass, std::uint64_t bytes) {
    Message m{/*from=*/"a", /*to=*/"b", klass, bytes, /*kind=*/0, {}};
    ASSERT_TRUE(net.send(std::move(m)).is_ok());
  }
};

TEST(TrafficAccountingTest, WindowQueriesSumBuckets) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  f.send(TrafficClass::kControl, 1000);
  f.env.run_until(120.0);
  f.send(TrafficClass::kControl, 500);
  f.env.run();
  EXPECT_EQ(f.net.bytes_in_window(TrafficClass::kControl, 0, 60), 1000u);
  EXPECT_EQ(f.net.bytes_in_window(TrafficClass::kControl, 60, 200), 500u);
  EXPECT_EQ(f.net.bytes_in_window(TrafficClass::kControl, 0, 200), 1500u);
}

TEST(TrafficAccountingTest, SpreadPreservesTotals) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  // 30 GB migration at 1 Gbps spans ~4 buckets; the sum must be exact.
  f.send(TrafficClass::kMigration, 30'000'000'000ULL);
  f.env.run();
  std::uint64_t total = 0;
  for (int bucket = 0; bucket < 10; ++bucket) {
    total += f.net.bytes_in_window(TrafficClass::kMigration,
                                   bucket * 60.0, bucket * 60.0 + 59.999);
  }
  EXPECT_EQ(total, 30'000'000'000ULL);
  // And no single 60 s bucket can exceed 1 Gbps x 60 s of this flow.
  for (int bucket = 0; bucket < 10; ++bucket) {
    EXPECT_LE(f.net.bytes_in_window(TrafficClass::kMigration, bucket * 60.0,
                                    bucket * 60.0 + 59.999),
              7'500'000'001ULL);
  }
}

TEST(TrafficAccountingTest, BackupChannelSerializesFlows) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  // Two 3.75 GB backups at the 0.5 Gbps channel: 60 s each, FIFO.
  f.send(TrafficClass::kCheckpoint, 3'750'000'000ULL);
  f.send(TrafficClass::kCheckpoint, 3'750'000'000ULL);
  EXPECT_NEAR(f.net.backup_lag(0.0), 120.0, 1.0);
  f.env.run_until(60.0);
  EXPECT_NEAR(f.net.backup_lag(60.0), 60.0, 1.0);
  f.env.run();
  EXPECT_GT(f.env.now(), 119.0);
  EXPECT_DOUBLE_EQ(f.net.backup_lag(f.env.now()), 0.0);
}

TEST(TrafficAccountingTest, BackupChannelCapsClassUtilization) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  for (int i = 0; i < 6; ++i) {
    f.send(TrafficClass::kCheckpoint, 3'750'000'000ULL);
  }
  f.env.run();
  // 0.5 Gbps channel on a 10 Gbps backbone: the class can never exceed 5%.
  const double peak = f.net.peak_class_utilization(
      {TrafficClass::kCheckpoint}, 0, f.env.now());
  EXPECT_LE(peak, 0.051);
  EXPECT_GT(peak, 0.04);  // and it actually uses its budget
}

TEST(TrafficAccountingTest, DisabledPacingUsesBulkPath) {
  sim::Environment env(4);
  SimNetworkConfig config;
  config.backup_pace_gbps = 0.0;
  SimNetwork net(env, config);
  net.register_endpoint("a", [](Message&&) {});
  net.register_endpoint("b", [](Message&&) {});
  // 1 s at the 1 Gbps line rate.
  Message m{"a", "b", TrafficClass::kCheckpoint, 125'000'000ULL, 0, {}};
  ASSERT_TRUE(net.send(std::move(m)).is_ok());
  env.run();
  EXPECT_LT(env.now(), 1.5);  // line rate, not the (absent) pace
  EXPECT_DOUBLE_EQ(net.backup_lag(env.now()), 0.0);
}

TEST(TrafficAccountingTest, FederationChannelSerializesAndCapsClass) {
  Fixture f;
  f.attach("a");
  f.attach("b");
  // Two 7.5 GB cross-campus shipments at the 1 Gbps WAN channel: 60 s
  // each, FIFO — the second queues behind the first.
  f.send(TrafficClass::kFederation, 7'500'000'000ULL);
  f.send(TrafficClass::kFederation, 7'500'000'000ULL);
  EXPECT_NEAR(f.net.federation_lag(0.0), 120.0, 1.0);
  f.env.run_until(60.0);
  EXPECT_NEAR(f.net.federation_lag(60.0), 60.0, 1.0);
  f.env.run();
  EXPECT_GT(f.env.now(), 119.0);
  EXPECT_DOUBLE_EQ(f.net.federation_lag(f.env.now()), 0.0);
  // 1 Gbps channel on a 10 Gbps backbone: the class stays within 10%, and
  // its bytes are accounted under their own class.
  const double peak = f.net.peak_class_utilization(
      {TrafficClass::kFederation}, 0, f.env.now());
  EXPECT_LE(peak, 0.101);
  EXPECT_GT(peak, 0.09);
  EXPECT_EQ(f.net.bytes_sent(TrafficClass::kFederation), 15'000'000'000ULL);
  EXPECT_EQ(f.net.bytes_sent(TrafficClass::kCheckpoint), 0u);
  // The federation channel is independent of the backup channel.
  EXPECT_DOUBLE_EQ(f.net.backup_lag(f.env.now()), 0.0);
}

TEST(TrafficAccountingTest, DisabledFederationPacingUsesBulkPath) {
  sim::Environment env(5);
  SimNetworkConfig config;
  config.federation_wan_gbps = 0.0;
  SimNetwork net(env, config);
  net.register_endpoint("a", [](Message&&) {});
  net.register_endpoint("b", [](Message&&) {});
  // 1 s at the 1 Gbps line rate.
  Message m{"a", "b", TrafficClass::kFederation, 125'000'000ULL, 0, {}};
  ASSERT_TRUE(net.send(std::move(m)).is_ok());
  env.run();
  EXPECT_LT(env.now(), 1.5);  // line rate, not the (absent) pace
  EXPECT_DOUBLE_EQ(net.federation_lag(env.now()), 0.0);
}

TEST(TrafficAccountingTest, ClassNamesStable) {
  EXPECT_EQ(traffic_class_name(TrafficClass::kCheckpoint), "checkpoint");
  EXPECT_EQ(traffic_class_name(TrafficClass::kMigration), "migration");
  EXPECT_EQ(traffic_class_name(TrafficClass::kUserData), "user_data");
  EXPECT_EQ(traffic_class_name(TrafficClass::kFederation), "federation");
}

}  // namespace
}  // namespace gpunion::net
