// Cross-region tracing: a job forwarded A -> B (and chained on to C when
// B dies) yields ONE trace whose spans come from every region's gateway
// and coordinator, with the WAN edge stitched by the transfer span id that
// rides JobTransfer.  Plus the determinism contract: in kDeterministic
// mode the encoded span stream is bit-identical across repeated runs AND
// across configured worker counts.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gpunion/federated_platform.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

CampusConfig small_campus(const std::string& prefix, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;  // off the control plane
  config.scrape_interval = 1e9;
  return config;
}

federation::RegionPolicy fast_policy() {
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 10.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 30.0;
  return policy;
}

RegionConfig make_region(const std::string& name, int nodes) {
  return RegionConfig{name, small_campus(name, nodes), fast_policy()};
}

workload::JobSpec training(const std::string& id, const std::string& group,
                           double seconds, util::SimTime at) {
  auto job = workload::make_training_job(id, workload::cnn_small(),
                                         seconds / 3600.0, group, at);
  job.checkpoint_interval = 30.0;
  return job;
}

/// The A -> B overflow scenario from the mesh suite: alpha's one GPU is
/// pinned, so "wanderer" must leave; bravo is closest and admits it.
FederationConfig overflow_config() {
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("bravo", 2));
  config.regions.push_back(make_region("charlie", 2));
  config.links.push_back({"alpha", "bravo", 0.002});
  config.links.push_back({"alpha", "charlie", 0.030});
  config.links.push_back({"bravo", "charlie", 0.030});
  return config;
}

void submit_overflow_pair(FederatedPlatform& fed, sim::Environment& env) {
  env.run_until(5.0);
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("pin", "group-alpha", 2000.0, env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("wanderer", "group-alpha", 600.0,
                                   env.now()))
                  .is_ok());
}

const obs::Span* find_stage(const std::vector<obs::Span>& spans,
                            std::string_view stage_name) {
  auto it = std::find_if(spans.begin(), spans.end(), [&](const obs::Span& s) {
    return s.stage == stage_name;
  });
  return it == spans.end() ? nullptr : &*it;
}

std::vector<const obs::Span*> all_of_stage(const std::vector<obs::Span>& spans,
                                           std::string_view stage_name) {
  std::vector<const obs::Span*> out;
  for (const obs::Span& span : spans) {
    if (span.stage == stage_name) out.push_back(&span);
  }
  return out;
}

TEST(FederationTraceTest, ForwardedJobIsOneTraceWithWanEdgesIntact) {
  sim::Environment env(23);
  FederatedPlatform fed(env, overflow_config());
  fed.start();
  submit_overflow_pair(fed, env);
  env.run_until(200.0);
  ASSERT_NE(fed.region("bravo").coordinator().job("wanderer"), nullptr)
      << "test setup: the job should be hosted in bravo by now";

  const auto spans =
      fed.tracer().trace(obs::Tracer::trace_for_job("wanderer"));
  ASSERT_FALSE(spans.empty());
  for (const obs::Span& span : spans) {
    EXPECT_EQ(span.trace_id, obs::Tracer::trace_for_job("wanderer"));
  }

  // Alpha's side of the hand-off: withdraw -> offer -> transfer, all from
  // alpha's gateway, chained onto the job's local spans.
  const obs::Span* withdraw = find_stage(spans, obs::stage::kFedWithdraw);
  const obs::Span* offer = find_stage(spans, obs::stage::kFedOffer);
  const obs::Span* transfer = find_stage(spans, obs::stage::kFedTransfer);
  const obs::Span* admit = find_stage(spans, obs::stage::kFedAdmit);
  ASSERT_NE(withdraw, nullptr);
  ASSERT_NE(offer, nullptr);
  ASSERT_NE(transfer, nullptr);
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(withdraw->actor, "gw-alpha");
  EXPECT_EQ(offer->actor, "gw-alpha");
  EXPECT_EQ(transfer->actor, "gw-alpha");
  EXPECT_NE(withdraw->parent_span, 0u);  // chained onto the local spans
  EXPECT_EQ(offer->parent_span, withdraw->span_id);

  // THE cross-region edge: bravo's admit span parents to alpha's transfer
  // span (whose id crossed the WAN inside JobTransfer while still open).
  EXPECT_EQ(admit->actor, "gw-bravo");
  EXPECT_EQ(admit->parent_span, transfer->span_id);

  // And bravo's re-submit chains off the admit, so the remote execution
  // hangs under the WAN hop, not as a disconnected root.
  const obs::Span* remote_submit = nullptr;
  for (const obs::Span& span : spans) {
    if (span.stage == obs::stage::kSubmit &&
        span.actor == "coordinator-bravo") {
      remote_submit = &span;
    }
  }
  ASSERT_NE(remote_submit, nullptr);
  EXPECT_EQ(remote_submit->parent_span, admit->span_id);

  // The origin submit is still the trace's root.
  const obs::Span* origin_submit = find_stage(spans, obs::stage::kSubmit);
  ASSERT_NE(origin_submit, nullptr);
  EXPECT_EQ(origin_submit->actor, "coordinator-alpha");
  EXPECT_EQ(origin_submit->parent_span, 0u);

  std::set<std::string> actors;
  for (const obs::Span& span : spans) actors.insert(span.actor);
  EXPECT_TRUE(actors.count("coordinator-alpha"));
  EXPECT_TRUE(actors.count("gw-alpha"));
  EXPECT_TRUE(actors.count("gw-bravo"));
  EXPECT_TRUE(actors.count("coordinator-bravo"));
}

TEST(FederationTraceTest, ChainedReforwardStitchesThreeRegions) {
  sim::Environment env(23);
  FederatedPlatform fed(env, overflow_config());
  fed.start();
  submit_overflow_pair(fed, env);
  env.run_until(200.0);
  ASSERT_NE(fed.region("bravo").coordinator().job("wanderer"), nullptr);

  // Bravo goes dark past the horizon: its displaced guest chains on to
  // charlie, and the trace keeps growing — one trace, three regions.
  fed.inject_region_outage("bravo", 5000.0);
  env.run_until(1200.0);
  const sched::JobRecord* record =
      fed.region("charlie").coordinator().job("wanderer");
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->phase, sched::JobPhase::kCompleted);

  const auto spans =
      fed.tracer().trace(obs::Tracer::trace_for_job("wanderer"));
  const auto transfers = all_of_stage(spans, obs::stage::kFedTransfer);
  const auto admits = all_of_stage(spans, obs::stage::kFedAdmit);
  ASSERT_GE(transfers.size(), 2u);  // alpha -> bravo, then bravo -> charlie
  ASSERT_GE(admits.size(), 2u);

  // Every admit hangs off a transfer span from THIS trace: the WAN edge
  // held on both hops.
  std::set<std::uint64_t> transfer_ids;
  for (const obs::Span* t : transfers) transfer_ids.insert(t->span_id);
  for (const obs::Span* a : admits) {
    EXPECT_TRUE(transfer_ids.count(a->parent_span))
        << "admit by " << a->actor << " is detached from the trace";
  }

  std::set<std::string> actors;
  for (const obs::Span& span : spans) actors.insert(span.actor);
  EXPECT_TRUE(actors.count("gw-alpha"));
  EXPECT_TRUE(actors.count("gw-bravo"));
  EXPECT_TRUE(actors.count("gw-charlie"));
  EXPECT_TRUE(actors.count("coordinator-charlie"));

  // The completing run happened in charlie.
  bool charlie_ran = false;
  for (const obs::Span& span : spans) {
    if (span.stage == obs::stage::kRun &&
        span.actor == "coordinator-charlie") {
      charlie_ran = true;
    }
  }
  EXPECT_TRUE(charlie_ran);
}

std::vector<std::uint8_t> encoded_span_stream(unsigned worker_threads) {
  sim::EnvConfig env_config;
  env_config.mode = sim::ExecutionMode::kDeterministic;
  env_config.worker_threads = worker_threads;  // must be a no-op
  sim::Environment env(23, env_config);
  FederatedPlatform fed(env, overflow_config());
  fed.start();
  env.run_until(5.0);
  (void)fed.region("alpha").coordinator().submit(
      training("pin", "group-alpha", 2000.0, env.now()));
  (void)fed.region("alpha").coordinator().submit(
      training("wanderer", "group-alpha", 600.0, env.now()));
  env.run_until(300.0);
  return obs::encode_spans(fed.tracer().snapshot());
}

TEST(FederationTraceTest, SpanStreamBitIdenticalAcrossRunsAndWorkerCounts) {
  const auto first = encoded_span_stream(1);
  ASSERT_FALSE(first.empty());
  std::vector<obs::Span> decoded;
  ASSERT_TRUE(obs::decode_spans(first, &decoded));
  ASSERT_FALSE(decoded.empty());
  // Same seed, same mode -> the same bytes; and kDeterministic ignores the
  // configured worker count, so 8 "workers" change nothing either.
  EXPECT_EQ(encoded_span_stream(1), first);
  EXPECT_EQ(encoded_span_stream(8), first);
}

}  // namespace
}  // namespace gpunion
