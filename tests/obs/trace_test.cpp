// Tracer + exporter unit tests, and the single-campus causal-chain
// contract: one traced job yields submit -> queue_wait -> placement ->
// dispatch -> run with parent edges intact, checkpoint spans as siblings
// of the run, and the write-behind ledger's group commits joining the
// same trace by key-derived trace id.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gpunion/platform.h"
#include "monitor/exposition.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "workload/profiles.h"

namespace gpunion::obs {
namespace {

TEST(TracerTest, TraceForJobIsStableAndNonZero) {
  const std::uint64_t a = Tracer::trace_for_job("job-42");
  EXPECT_EQ(a, Tracer::trace_for_job("job-42"));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, Tracer::trace_for_job("job-43"));
  EXPECT_NE(Tracer::trace_for_job(""), 0u);  // never the invalid id
}

TEST(TracerTest, RecordAdvancesTheParentChain) {
  Tracer tracer;
  TraceContext ctx{Tracer::trace_for_job("chain"), 0};
  const std::uint64_t first = tracer.record(ctx, stage::kSubmit, "c", 0, 1);
  ASSERT_NE(first, 0u);
  EXPECT_EQ(ctx.parent_span, first);
  const std::uint64_t second =
      tracer.record(ctx, stage::kQueueWait, "c", 1, 2);
  EXPECT_EQ(ctx.parent_span, second);

  const auto spans = tracer.trace(ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent_span, 0u);       // root
  EXPECT_EQ(spans[1].parent_span, first);    // chained
}

TEST(TracerTest, AdvanceFalseRecordsASibling) {
  Tracer tracer;
  TraceContext ctx{Tracer::trace_for_job("sib"), 0};
  const std::uint64_t run_parent =
      tracer.record(ctx, stage::kDispatch, "c", 0, 1);
  tracer.record(ctx, stage::kCheckpoint, "c", 2, 2, "", /*advance=*/false);
  tracer.record(ctx, stage::kCheckpoint, "c", 3, 3, "", /*advance=*/false);
  EXPECT_EQ(ctx.parent_span, run_parent);  // context did not move
  const auto spans = tracer.trace(ctx.trace_id);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].parent_span, run_parent);
  EXPECT_EQ(spans[2].parent_span, run_parent);
}

TEST(TracerTest, RingDropsOldestAtCapacity) {
  Tracer tracer(/*capacity=*/4);
  TraceContext ctx{Tracer::trace_for_job("ring"), 0};
  for (int i = 0; i < 6; ++i) {
    tracer.record(ctx, stage::kRun, "c", i, i + 1,
                  "n=" + std::to_string(i));
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first snapshot: the two earliest spans were evicted.
  EXPECT_EQ(spans.front().detail, "n=2");
  EXPECT_EQ(spans.back().detail, "n=5");
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].span_id, spans[i - 1].span_id);
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  EXPECT_FALSE(tracer.enabled());
  TraceContext ctx{Tracer::trace_for_job("off"), 0};
  EXPECT_EQ(tracer.record(ctx, stage::kSubmit, "c", 0, 1), 0u);
  EXPECT_EQ(ctx.parent_span, 0u);  // context untouched while off
  EXPECT_EQ(tracer.open_span(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracerTest, OpenThenCloseSpanKeepsThePreallocatedId) {
  Tracer tracer;
  const std::uint64_t id = tracer.open_span();
  ASSERT_NE(id, 0u);
  const std::uint64_t trace_id = Tracer::trace_for_job("wan");
  // A child recorded BEFORE the parent closes (the cross-WAN shape).
  TraceContext child{trace_id, id};
  const std::uint64_t admit =
      tracer.record(child, stage::kFedAdmit, "gw-b", 5, 5);
  tracer.close_span(id, trace_id, 0, stage::kFedTransfer, "gw-a", 1, 6);
  const auto spans = tracer.trace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, admit);
  EXPECT_EQ(spans[0].parent_span, id);
  EXPECT_EQ(spans[1].span_id, id);
  EXPECT_EQ(spans[1].stage, stage::kFedTransfer);
}

TEST(TracerTest, ClearResetsRetainedSpansButNotSpanIds) {
  Tracer tracer;
  TraceContext ctx{Tracer::trace_for_job("clr"), 0};
  const std::uint64_t before = tracer.record(ctx, stage::kRun, "c", 0, 1);
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  TraceContext fresh{Tracer::trace_for_job("clr"), 0};
  EXPECT_GT(tracer.record(fresh, stage::kRun, "c", 1, 2), before);
}

std::vector<Span> sample_spans() {
  std::vector<Span> spans;
  Span a;
  a.trace_id = 0xDEADBEEFu;
  a.span_id = 1;
  a.parent_span = 0;
  a.stage = "submit";
  a.actor = "coordinator-alpha";
  a.start = 1.5;
  a.end = 2.25;
  a.detail = "node=ws-0,\"quoted\"\\slash";
  Span b;
  b.trace_id = 0xDEADBEEFu;
  b.span_id = 2;
  b.parent_span = 1;
  b.stage = "fed_transfer";
  b.actor = "gw-alpha";
  b.start = 2.25;
  b.end = 9.0;
  spans.push_back(a);
  spans.push_back(b);
  return spans;
}

TEST(SpanCodecTest, BinaryRoundTripPreservesEveryField) {
  const auto spans = sample_spans();
  const auto bytes = encode_spans(spans);
  std::vector<Span> decoded;
  ASSERT_TRUE(decode_spans(bytes, &decoded));
  ASSERT_EQ(decoded.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(decoded[i].trace_id, spans[i].trace_id);
    EXPECT_EQ(decoded[i].span_id, spans[i].span_id);
    EXPECT_EQ(decoded[i].parent_span, spans[i].parent_span);
    EXPECT_EQ(decoded[i].stage, spans[i].stage);
    EXPECT_EQ(decoded[i].actor, spans[i].actor);
    EXPECT_DOUBLE_EQ(decoded[i].start, spans[i].start);
    EXPECT_DOUBLE_EQ(decoded[i].end, spans[i].end);
    EXPECT_EQ(decoded[i].detail, spans[i].detail);
  }
  // Identical streams encode identically (the determinism tests' axiom).
  EXPECT_EQ(encode_spans(spans), bytes);
}

TEST(SpanCodecTest, DecodeRejectsTruncatedAndForeignBuffers) {
  const auto bytes = encode_spans(sample_spans());
  std::vector<Span> out;
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(decode_spans(truncated, &out)) << "cut at " << cut;
    EXPECT_TRUE(out.empty());
  }
  std::vector<std::uint8_t> foreign = bytes;
  foreign[0] ^= 0xFF;  // wrong magic
  EXPECT_FALSE(decode_spans(foreign, &out));
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);  // junk after the last span
  EXPECT_FALSE(decode_spans(trailing, &out));
}

TEST(SpanExportTest, PerfettoJsonNamesActorsAndEvents) {
  const std::string json = perfetto_trace_json(sample_spans());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("coordinator-alpha"), std::string::npos);
  EXPECT_NE(json.find("gw-alpha"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"submit\""), std::string::npos);
  // 1.5 sim-seconds -> 1500000 us.
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  // The nasty detail string survived JSON escaping.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(SpanExportTest, PublishMetricsRegistersStageHistograms) {
  Tracer tracer;
  TraceContext ctx{Tracer::trace_for_job("metrics"), 0};
  tracer.record(ctx, stage::kSubmit, "c", 0.0, 0.5);
  tracer.record(ctx, stage::kRun, "c", 0.5, 10.5);
  monitor::MetricRegistry registry;
  tracer.publish_metrics(registry);
  const std::string text = monitor::expose_registry(registry);
  EXPECT_NE(text.find("gpunion_trace_stage_seconds"), std::string::npos);
  EXPECT_NE(text.find("stage=\"submit\""), std::string::npos);
  EXPECT_NE(text.find("stage=\"run\""), std::string::npos);
  EXPECT_NE(text.find("gpunion_trace_spans{state=\"recorded\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gpunion_trace_spans{state=\"dropped\"} 0"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Single-campus causal chain
// ---------------------------------------------------------------------------

CampusConfig traced_campus(int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back({hw::workstation_3090("tr-" + std::to_string(i)),
                            "group-a"});
  }
  config.storage.push_back({"nas-tr", 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  config.db.write_behind = true;  // group commits produce db spans
  config.db.flush_threshold = 1u << 20;
  config.db.flush_interval = 30.0;
  return config;
}

const Span* find_stage(const std::vector<Span>& spans,
                       std::string_view stage_name) {
  auto it = std::find_if(spans.begin(), spans.end(), [&](const Span& s) {
    return s.stage == stage_name;
  });
  return it == spans.end() ? nullptr : &*it;
}

TEST(PlatformTraceTest, LocalJobYieldsTheFullCausalChain) {
  sim::Environment env(11);
  Platform platform(env, traced_campus(2));
  platform.start();
  env.run_until(5.0);
  auto job = workload::make_training_job("traced", workload::cnn_small(),
                                         300.0 / 3600.0, "group-a",
                                         env.now());
  job.checkpoint_interval = 60.0;
  ASSERT_TRUE(platform.coordinator().submit(std::move(job)).is_ok());
  env.run_until(3600.0);
  ASSERT_GE(platform.coordinator().stats().jobs_completed, 1);

  const auto spans =
      platform.tracer().trace(Tracer::trace_for_job("traced"));
  ASSERT_FALSE(spans.empty());
  const Span* submit = find_stage(spans, stage::kSubmit);
  const Span* queue_wait = find_stage(spans, stage::kQueueWait);
  const Span* placement = find_stage(spans, stage::kPlacement);
  const Span* dispatch = find_stage(spans, stage::kDispatch);
  const Span* run = find_stage(spans, stage::kRun);
  ASSERT_NE(submit, nullptr);
  ASSERT_NE(queue_wait, nullptr);
  ASSERT_NE(placement, nullptr);
  ASSERT_NE(dispatch, nullptr);
  ASSERT_NE(run, nullptr);

  // The chain: each stage parents to its causal predecessor.
  EXPECT_EQ(submit->parent_span, 0u);
  EXPECT_EQ(queue_wait->parent_span, submit->span_id);
  EXPECT_EQ(placement->parent_span, queue_wait->span_id);
  EXPECT_EQ(dispatch->parent_span, placement->span_id);
  EXPECT_EQ(run->parent_span, dispatch->span_id);
  EXPECT_EQ(submit->actor, "coordinator");
  EXPECT_LE(submit->start, run->start);
  EXPECT_GT(run->duration(), 0.0);

  // Checkpoints annotate the run as siblings — parented to the dispatch
  // span, never redirecting the chain.
  bool saw_checkpoint = false;
  for (const Span& span : spans) {
    if (span.stage != stage::kCheckpoint) continue;
    saw_checkpoint = true;
    EXPECT_EQ(span.parent_span, dispatch->span_id);
  }
  EXPECT_TRUE(saw_checkpoint);

  // The write-behind ledger joined the trace purely by key-derived id:
  // its group-commit spans are roots with ack -> durable timing.
  const Span* commit = find_stage(spans, stage::kDbGroupCommit);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->parent_span, 0u);
  EXPECT_EQ(commit->actor, "db");
  EXPECT_GE(commit->end, commit->start);
}

}  // namespace
}  // namespace gpunion::obs
