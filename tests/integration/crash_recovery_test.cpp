// Crash-recovery chaos harness: the named crash-point taxonomy fired
// against a live campus (and, for kCrashMidForward, a live federation),
// at several seeds, with deterministic replay.
//
// Three layers of assertion:
//  * survivability — every crash point, fired repeatedly mid-run, ends
//    with every submitted job completed exactly once and the jobs
//    conservation identity closed;
//  * taxonomy honesty — kCrashPreAck (group-commit, then die) recovers
//    with ZERO WAL replay while kCrashPostAckPreFlush / mid-group-commit
//    (dirty ledger / torn commit) genuinely replay acked work, so the
//    named points are demonstrably different states, not one crash with
//    four labels;
//  * determinism — the same seed re-runs to bit-identical per-job
//    completion times with crashes enabled (kDeterministic schedules
//    fault triggers as ordinary events in the global order).
//
// GPUNION_INVARIANT_SEED pins the seed family, same contract as the
// coordinator invariants harness (CI runs fixed seeds plus $RANDOM).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "gpunion/federated_platform.h"
#include "gpunion/platform.h"
#include "sim/fault_injector.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

CampusConfig crash_campus(int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back({hw::workstation_3090("cr-" + std::to_string(i)),
                            "group-" + std::to_string(i % 2)});
  }
  config.storage.push_back({"nas-cr", 64ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  config.db.shard_count = 4;
  config.db.write_behind = true;
  // Lazy flushing on purpose: only the 30 s interval commit runs, never a
  // threshold flush — so a submission wave placed just before a scheduled
  // crash DETERMINISTICALLY leaves acked work in the WAL for the dirty
  // crash points to lose-or-replay.
  config.db.flush_threshold = 1u << 20;
  config.db.flush_interval = 30.0;
  return config;
}

struct CampaignResult {
  int submitted = 0;
  int completed = 0;
  int recoveries = 0;
  std::uint64_t wal_replayed = 0;
  std::map<std::string, double> completed_at;  // per-job, the replay oracle
};

/// One seeded campaign against one named crash point: submit a backlog,
/// fire the crash three times while it drains, assert nothing was lost
/// or doubled.
CampaignResult run_campaign(std::uint64_t seed,
                            const std::string& crash_point) {
  SCOPED_TRACE("GPUNION_INVARIANT_SEED=" + std::to_string(seed) + " point=" +
               crash_point);
  sim::Environment env(seed);
  Platform platform(env, crash_campus(4));
  platform.start();
  platform.register_crash_points(/*downtime=*/1.5);
  env.run_until(5.0);

  CampaignResult result;
  util::Rng rng(seed * 977 + 13);
  auto submit_batch = [&](int count) {
    for (int i = 0; i < count; ++i) {
      auto job = workload::make_training_job(
          "job-" + std::to_string(result.submitted), workload::cnn_small(),
          rng.uniform(0.01, 0.03),
          "group-" + std::to_string(result.submitted % 2), env.now());
      job.checkpoint_interval = 30.0;
      EXPECT_TRUE(platform.coordinator().submit(std::move(job)).is_ok());
      ++result.submitted;
    }
  };
  submit_batch(4);
  // Three crashes while the backlog drains, each 0.1 s after a fresh
  // submission wave: the wave's ledgered enqueues are acked but cannot
  // have been flushed yet (no threshold flush; the interval commits land
  // at 30/60/90/120 s), so the dirty crash points find a dirty WAL every
  // time.  The gaps dwarf the 1.5 s downtime, so each trigger finds a
  // live control plane to kill.
  for (double at : {20.0, 80.0, 140.0}) {
    env.schedule_at(at - 0.1, [&] { submit_batch(2); });
    platform.fault_injector().inject_at(at, crash_point);
  }
  env.run_until(900.0);

  const auto& stats = platform.coordinator().stats();
  result.completed = stats.jobs_completed;
  result.recoveries = platform.coordinator().recovery_stats().recoveries;
  result.wal_replayed = platform.database().wal().stats().replayed;
  for (const auto& [job_id, record] : platform.coordinator().archive()) {
    result.completed_at[job_id] = record.completed_at;
  }
  // Exactly once, everything: completions match submissions, conservation
  // closes, every trigger actually crashed and recovered the plane.
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(stats.jobs_submitted,
            static_cast<int>(platform.coordinator().jobs().size() +
                             platform.coordinator().archive().size()) +
                stats.jobs_withdrawn);
  EXPECT_EQ(platform.fault_injector().fired(crash_point), 3u);
  EXPECT_EQ(result.recoveries, 3);
  EXPECT_EQ(platform.fault_injector().misfires(), 0u);
  return result;
}

std::vector<std::uint64_t> harness_seeds() {
  if (const char* pinned = std::getenv("GPUNION_INVARIANT_SEED")) {
    const std::uint64_t base = std::strtoull(pinned, nullptr, 10);
    return {base, base + 1, base + 2};
  }
  return {1, 2, 3};
}

TEST(CrashRecoveryTest, EveryCampusCrashPointIsSurvivableAtEverySeed) {
  // The campus taxonomy (mid_forward needs a federation; covered below).
  // Sorted, matching FaultInjector::names() deterministic iteration.
  const std::vector<std::string> points = {
      std::string(sim::kCrashMidGroupCommit),
      std::string(sim::kCrashPostAckPreFlush),
      std::string(sim::kCrashPreAck),
  };
  // register_crash_points must install exactly these names.
  {
    sim::Environment env(1);
    Platform platform(env, crash_campus(2));
    platform.start();
    platform.register_crash_points(1.0);
    EXPECT_EQ(platform.fault_injector().names(), points);
  }
  for (const std::uint64_t seed : harness_seeds()) {
    std::uint64_t replayed_dirty = 0;
    for (const auto& point : points) {
      const CampaignResult result = run_campaign(seed, point);
      if (::testing::Test::HasFatalFailure()) return;
      if (point == sim::kCrashPreAck) {
        // Group-commit-then-die: the WAL was empty at every crash, so
        // recovery had nothing to replay.  If this fails, the pre-ack
        // point is not actually flushing first.
        EXPECT_EQ(result.wal_replayed, 0u) << point;
      } else {
        replayed_dirty += result.wal_replayed;
      }
    }
    // The dirty-ledger points must have genuinely replayed acked work —
    // otherwise every "crash" happened on a conveniently clean ledger and
    // the recovery path was never exercised.
    EXPECT_GT(replayed_dirty, 0u) << "seed " << seed;
  }
}

TEST(CrashRecoveryTest, SameSeedReplaysBitIdenticallyWithCrashes) {
  const std::uint64_t seed = harness_seeds().front();
  const CampaignResult first =
      run_campaign(seed, std::string(sim::kCrashPostAckPreFlush));
  const CampaignResult second =
      run_campaign(seed, std::string(sim::kCrashPostAckPreFlush));
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.wal_replayed, second.wal_replayed);
  // Bit-exact: every job finished at the same simulated instant.
  EXPECT_EQ(first.completed_at, second.completed_at);
}

TEST(CrashRecoveryTest, FederatedMidForwardCrashLandsEveryJobOnce) {
  for (const std::uint64_t seed : harness_seeds()) {
    SCOPED_TRACE("GPUNION_INVARIANT_SEED=" + std::to_string(seed));
    sim::Environment env(seed);
    FederationConfig config;
    CampusConfig alpha = crash_campus(1);
    CampusConfig beta = crash_campus(3);
    federation::RegionPolicy policy;
    policy.digest_interval = 5.0;
    policy.forward_after = 10.0;
    policy.forward_timeout = 10.0;
    policy.forward_retry_backoff = 30.0;
    config.regions.push_back(RegionConfig{"alpha", alpha, policy});
    config.regions.push_back(RegionConfig{"beta", beta, policy});
    FederatedPlatform fed(env, config);
    fed.start();
    fed.register_region_crash_points("alpha", /*downtime=*/2.0);
    env.run_until(5.0);

    const int submitted = 4;
    for (int i = 0; i < submitted; ++i) {
      ASSERT_TRUE(
          fed.region("alpha")
              .coordinator()
              .submit(workload::make_training_job(
                  "job-" + std::to_string(i), workload::cnn_small(),
                  300.0 / 3600.0, "group-0", env.now()))
              .is_ok());
    }
    // Fire the mid-forward point at the moment it is named for: a
    // withdrawn job's offer or transfer on the WAN.
    bool in_flight = false;
    while (env.now() < 120.0) {
      if (fed.gateway("alpha").withdrawn_in_flight() >= 1) {
        in_flight = true;
        break;
      }
      env.run_until(env.now() + 0.005);
    }
    ASSERT_TRUE(in_flight) << "no forward ever went in flight";
    ASSERT_TRUE(fed.region("alpha").fault_injector().inject_now(
        std::string(sim::kCrashMidForward)));
    env.run_until(env.now() + 1500.0);

    EXPECT_EQ(fed.region("alpha").coordinator().stats().jobs_completed +
                  fed.region("beta").coordinator().stats().jobs_completed,
              submitted);
    EXPECT_EQ(fed.gateway("alpha").recovery_stats().recoveries, 1);
    EXPECT_EQ(fed.gateway("alpha").withdrawn_in_flight(), 0);
    EXPECT_EQ(fed.region("alpha").fault_injector().fired(
                  std::string(sim::kCrashMidForward)),
              1u);
  }
}

}  // namespace
}  // namespace gpunion
