// End-to-end platform tests on the paper's 11-server campus.
#include "gpunion/platform.h"

#include <gtest/gtest.h>

#include "gpunion/client.h"
#include "monitor/exposition.h"

namespace gpunion {
namespace {

TEST(PlatformTest, StartBringsFleetOnline) {
  sim::Environment env(1);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(10.0);
  int active = 0;
  for (const auto* node : platform.coordinator().directory().all()) {
    if (node->status == db::NodeStatus::kActive) ++active;
  }
  EXPECT_EQ(active, 11);
  EXPECT_EQ(platform.total_gpus(), 8 + 8 + 2 + 4);
  EXPECT_EQ(platform.coordinator().directory().total_gpus(), 22);
}

TEST(PlatformTest, ClientSubmitRunsJob) {
  sim::Environment env(2);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);
  Client client(platform, "theory");
  auto job_id = client.submit_training(workload::cnn_small(), 0.5);
  ASSERT_TRUE(job_id.ok()) << job_id.status();
  env.run_until(env.now() + 60.0);
  const sched::JobRecord* record = client.status(*job_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, sched::JobPhase::kRunning);
  env.run_until(env.now() + util::hours(1));
  EXPECT_EQ(record->phase, sched::JobPhase::kCompleted);
}

TEST(PlatformTest, SessionServedOnIdleFleet) {
  sim::Environment env(3);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);
  Client client(platform, "theory");
  auto session = client.request_session(1.0);
  ASSERT_TRUE(session.ok());
  env.run_until(env.now() + util::hours(1.2));
  EXPECT_EQ(client.status(*session)->phase, sched::JobPhase::kCompleted);
  EXPECT_EQ(platform.coordinator().stats().sessions_served, 1);
}

TEST(PlatformTest, UtilizationFromLedger) {
  sim::Environment env(4);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);
  Client client(platform, "vision");
  // One job occupying 1 of 22 GPUs for ~an hour of a 2-hour window.
  auto job_id = client.submit_training(workload::cnn_small(), 1.0);
  ASSERT_TRUE(job_id.ok());
  env.run_until(util::hours(2));
  const double utilization = platform.fleet_utilization(0, util::hours(2));
  EXPECT_GT(utilization, 0.015);
  EXPECT_LT(utilization, 0.035);
  const auto per_node = platform.per_node_utilization(0, util::hours(2));
  EXPECT_EQ(per_node.size(), 11u);
  double max_node = 0;
  for (const auto& [host, value] : per_node) max_node = std::max(max_node, value);
  EXPECT_GT(max_node, 0.3);  // the node that ran it was ~50% busy
}

TEST(PlatformTest, InterruptionInjectionAndRejoin) {
  sim::Environment env(5);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);
  const std::string machine = Platform::machine_id_for("ws-vision-0");
  workload::Interruption event;
  event.machine_id = machine;
  event.kind = agent::DepartureKind::kTemporary;
  event.downtime = util::minutes(20);
  event.at = env.now();
  platform.inject_interruption(event);
  env.run_until(env.now() + util::minutes(2));
  EXPECT_EQ(platform.coordinator().directory().find(machine)->status,
            db::NodeStatus::kUnavailable);
  env.run_until(env.now() + util::minutes(25));
  EXPECT_EQ(platform.coordinator().directory().find(machine)->status,
            db::NodeStatus::kActive);
}

TEST(PlatformTest, OwnerReclaimEvictsGuestForOwnerJob) {
  sim::Environment env(6);
  CampusConfig config = paper_campus();
  // Shrink to one workstation so the owner/guest conflict is forced.
  config.nodes.resize(1);  // ws-vision-0 only
  Platform platform(env, config);
  platform.start();
  env.run_until(5.0);

  // A guest (nlp) fills the only GPU.
  Client guest(platform, "nlp");
  auto guest_job = guest.submit_training(workload::cnn_small(), 4.0);
  ASSERT_TRUE(guest_job.ok());
  env.run_until(env.now() + util::minutes(12));  // past one checkpoint
  ASSERT_EQ(guest.status(*guest_job)->phase, sched::JobPhase::kRunning);

  // The owner (vision) submits with a home-node hint: reclaim fires.
  Client owner(platform, "vision");
  SubmitOptions options;
  options.home_hostname = "ws-vision-0";
  auto owner_job = owner.submit_training(workload::cnn_small(), 0.5, options);
  ASSERT_TRUE(owner_job.ok());
  env.run_until(env.now() + util::minutes(3));
  EXPECT_EQ(owner.status(*owner_job)->phase, sched::JobPhase::kRunning);
  // Guest went back to pending (single node campus: nowhere else to go).
  EXPECT_EQ(guest.status(*guest_job)->phase, sched::JobPhase::kPending);
  EXPECT_GE(guest.status(*guest_job)->interruptions, 1);
}

TEST(PlatformTest, MetricsExposedInPrometheusFormat) {
  sim::Environment env(7);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(util::minutes(3));  // two scrapes
  const std::string text = monitor::expose_registry(platform.metrics());
  EXPECT_NE(text.find("# TYPE gpunion_nodes_active gauge"),
            std::string::npos);
  EXPECT_NE(text.find("gpunion_nodes_active 11"), std::string::npos);
  EXPECT_NE(text.find("gpunion_gpu_busy_fraction{node=\"srv-mlsys-0\"}"),
            std::string::npos);
  // Scraper persisted history into the system database.
  EXPECT_FALSE(platform.database().series("gpunion_nodes_active").empty());
}

TEST(PlatformTest, CheckpointTrafficFlowsToNas) {
  sim::Environment env(8);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);
  Client client(platform, "bio");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(5);
  options.preferred_storage = {"nas-campus"};
  auto job_id =
      client.submit_training(workload::transformer_small(), 2.0, options);
  ASSERT_TRUE(job_id.ok());
  env.run_until(env.now() + util::hours(1));
  EXPECT_GT(platform.network().bytes_sent(net::TrafficClass::kCheckpoint),
            1ULL << 30);
  const auto& chain = platform.checkpoint_store().chain(*job_id);
  EXPECT_GE(chain.size(), 5u);
  EXPECT_EQ(chain.front().storage_node, "nas-campus");
}

TEST(PlatformTest, MachineIdsAreStable) {
  EXPECT_EQ(Platform::machine_id_for("ws-vision-0"),
            Platform::machine_id_for("ws-vision-0"));
  sim::Environment env(9);
  Platform platform(env, paper_campus());
  EXPECT_NE(platform.agent_by_hostname("ws-vision-0"), nullptr);
  EXPECT_EQ(platform.agent(Platform::machine_id_for("ws-vision-0")),
            platform.agent_by_hostname("ws-vision-0"));
  EXPECT_EQ(platform.machine_ids().size(), 11u);
}

}  // namespace
}  // namespace gpunion
