// Parameterized property tests: platform invariants must hold across seeds,
// churn intensities and policy presets.
#include <gtest/gtest.h>

#include "baseline/presets.h"
#include "gpunion/client.h"
#include "gpunion/platform.h"
#include "workload/generator.h"
#include "workload/provider_behavior.h"

namespace gpunion {
namespace {

struct PropertyParams {
  std::uint64_t seed;
  double events_per_day;
  baseline::Preset preset;
};

std::string param_name(const ::testing::TestParamInfo<PropertyParams>& info) {
  std::string preset(baseline::preset_name(info.param.preset));
  for (auto& c : preset) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return "seed" + std::to_string(info.param.seed) + "_rate" +
         std::to_string(static_cast<int>(info.param.events_per_day * 10)) +
         "_" + preset;
}

class PlatformPropertyTest : public ::testing::TestWithParam<PropertyParams> {
 protected:
  void run_scenario() {
    const auto& params = GetParam();
    platform_.reset();  // must go before the environment it references
    env_ = std::make_unique<sim::Environment>(params.seed);
    CampusConfig config = paper_campus();
    baseline::apply_preset(config, params.preset);
    platform_ = std::make_unique<Platform>(*env_, config);
    platform_->start();
    env_->run_until(5.0);

    // A small mixed workload.
    std::vector<workload::GroupDemand> groups(2);
    groups[0].name = "vision";
    groups[0].burst_jobs_per_day = 5.0;
    groups[0].sessions_per_day = 6.0;
    groups[0].duration_scale = 0.3;
    groups[1].name = "nlp";
    groups[1].burst_jobs_per_day = 3.0;
    groups[1].sessions_per_day = 4.0;
    groups[1].duration_scale = 0.3;
    groups[1].phase_days = 3.0;
    const auto trace = workload::generate_campus_trace(
        groups, horizon_, util::Rng(params.seed * 7 + 1));
    for (const auto& event : trace) {
      auto job = baseline::adapt_job(event.job, params.preset);
      env_->schedule_at(event.at, [this, job]() mutable {
        (void)platform_->coordinator().submit(std::move(job));
      });
    }

    workload::InterruptionModel model;
    model.events_per_day = params.events_per_day;
    model.min_downtime = util::minutes(15);
    model.max_downtime = util::hours(1.5);
    const auto interruptions = workload::generate_interruptions(
        platform_->machine_ids(), horizon_, model,
        util::Rng(params.seed * 13 + 2));
    for (const auto& event : interruptions) {
      env_->schedule_at(event.at, [this, event] {
        platform_->inject_interruption(event);
      });
    }
    env_->run_until(horizon_);
  }

  const util::SimTime horizon_ = util::days(3);
  std::unique_ptr<sim::Environment> env_;
  std::unique_ptr<Platform> platform_;
};

TEST_P(PlatformPropertyTest, InvariantsHold) {
  run_scenario();
  const auto& coordinator = platform_->coordinator();

  // Terminal records retire into the archive; the invariants must hold
  // across both populations.
  std::vector<std::pair<const std::string*, const sched::JobRecord*>> all;
  for (const auto& [job_id, record] : coordinator.jobs()) {
    all.emplace_back(&job_id, &record);
    // Live map holds only non-terminal phases, except the bounded window
    // where a job cancelled mid-dispatch awaits its ack before retiring.
    EXPECT_TRUE(!sched::job_phase_terminal(record.phase) ||
                record.awaiting_dispatch_settle)
        << job_id;
  }
  for (const auto& [job_id, record] : coordinator.archive()) {
    all.emplace_back(&job_id, &record);
    // Archive holds only terminal phases.
    EXPECT_TRUE(sched::job_phase_terminal(record.phase)) << job_id;
  }

  int terminal = 0, live = 0;
  for (const auto& [job_id_ptr, record_ptr] : all) {
    const std::string& job_id = *job_id_ptr;
    const sched::JobRecord& record = *record_ptr;
    // (1) Progress is always within [0, 1].
    EXPECT_GE(record.checkpointed_progress, 0.0) << job_id;
    EXPECT_LE(record.checkpointed_progress, 1.0) << job_id;
    // (2) Completed jobs completed after submission, with full progress.
    if (record.phase == sched::JobPhase::kCompleted) {
      EXPECT_GE(record.completed_at, record.submitted_at) << job_id;
      EXPECT_DOUBLE_EQ(record.checkpointed_progress, 1.0) << job_id;
      ++terminal;
    }
    // (3) Running jobs sit on active nodes only.
    if (record.phase == sched::JobPhase::kRunning) {
      const auto* node = coordinator.directory().find(record.node);
      ASSERT_NE(node, nullptr) << job_id;
      EXPECT_EQ(node->status, db::NodeStatus::kActive)
          << job_id << " on " << record.node;
      ++live;
    }
    // (4) Lost work never negative.
    EXPECT_GE(record.lost_work_seconds, 0.0) << job_id;
  }
  EXPECT_GT(terminal + live, 0);  // scenario actually exercised the platform

  // (5) Directory capacity bounds.
  for (const auto* node : coordinator.directory().all()) {
    EXPECT_GE(node->free_gpus, 0) << node->machine_id;
    EXPECT_LE(node->free_gpus, node->gpu_count) << node->machine_id;
  }

  // (6) Ledger rows are well-formed and job-consistent.
  for (const auto& allocation : platform_->database().allocation_ledger()) {
    if (allocation.outcome != db::AllocationOutcome::kRunning) {
      EXPECT_GE(allocation.ended_at, allocation.started_at);
    }
    EXPECT_FALSE(allocation.machine_id.empty());
    EXPECT_NE(coordinator.job(allocation.job_id), nullptr);
  }

  // (7) Sessions accounting adds up.
  const auto& stats = coordinator.stats();
  EXPECT_LE(stats.sessions_served + stats.sessions_denied +
                stats.sessions_disrupted,
            stats.sessions_submitted);

  // (8) Migration records never resume before they were interrupted.
  for (const auto& record : coordinator.migrations().records()) {
    if (record.resumed()) {
      EXPECT_GE(record.downtime(), 0.0) << record.job_id;
    }
    EXPECT_GE(record.lost_work_seconds, -1e-6) << record.job_id;
  }

  // (9) Checkpoint traffic only exists for ALC-capable presets.
  const auto checkpoint_bytes =
      platform_->network().bytes_sent(net::TrafficClass::kCheckpoint);
  if (GetParam().preset == baseline::Preset::kKubernetes ||
      GetParam().preset == baseline::Preset::kSlurm) {
    EXPECT_EQ(checkpoint_bytes, 0u);
  }
}

TEST_P(PlatformPropertyTest, DeterministicReplay) {
  run_scenario();
  const auto first_completed = platform_->coordinator().stats().jobs_completed;
  const auto first_interruptions =
      platform_->coordinator().stats().interruptions;
  const auto first_bytes = platform_->network().total_bytes_sent();
  run_scenario();  // rebuild everything with the same seed
  EXPECT_EQ(platform_->coordinator().stats().jobs_completed, first_completed);
  EXPECT_EQ(platform_->coordinator().stats().interruptions,
            first_interruptions);
  EXPECT_EQ(platform_->network().total_bytes_sent(), first_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndChurnSweep, PlatformPropertyTest,
    ::testing::Values(
        PropertyParams{11, 0.5, baseline::Preset::kGpunion},
        PropertyParams{12, 2.0, baseline::Preset::kGpunion},
        PropertyParams{13, 3.2, baseline::Preset::kGpunion},
        PropertyParams{14, 2.0, baseline::Preset::kKubernetes},
        PropertyParams{15, 2.0, baseline::Preset::kSlurm},
        PropertyParams{16, 2.0, baseline::Preset::kManual},
        PropertyParams{17, 0.0, baseline::Preset::kGpunion}),
    param_name);

}  // namespace
}  // namespace gpunion
