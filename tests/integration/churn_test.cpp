// Multi-day churn scenarios: the platform must absorb sustained provider
// volatility without losing jobs or leaking resources.
#include <gtest/gtest.h>

#include "baseline/presets.h"
#include "gpunion/client.h"
#include "gpunion/platform.h"
#include "workload/provider_behavior.h"

namespace gpunion {
namespace {

struct ChurnRun {
  std::unique_ptr<sim::Environment> env;
  std::unique_ptr<Platform> platform;
  std::vector<std::string> job_ids;
};

ChurnRun run_churn(baseline::Preset preset, double events_per_day,
                   std::uint64_t seed, int job_count = 8,
                   double horizon_hours = 48.0) {
  ChurnRun run;
  run.env = std::make_unique<sim::Environment>(seed);
  CampusConfig config = paper_campus();
  baseline::apply_preset(config, preset);
  run.platform = std::make_unique<Platform>(*run.env, config);
  run.platform->start();
  run.env->run_until(5.0);

  Client client(*run.platform, "vision");
  for (int i = 0; i < job_count; ++i) {
    SubmitOptions options;
    options.checkpoint_interval = util::minutes(10);
    auto job_id = client.submit_training(workload::cnn_small(), 6.0, options);
    EXPECT_TRUE(job_id.ok());
    run.job_ids.push_back(*job_id);
  }

  workload::InterruptionModel model;
  model.events_per_day = events_per_day;
  model.min_downtime = util::minutes(20);
  model.max_downtime = util::hours(2);
  model.temporary_downtime = util::minutes(15);
  auto interruptions = workload::generate_interruptions(
      run.platform->machine_ids(), util::hours(horizon_hours), model,
      util::Rng(seed + 1));
  for (const auto& event : interruptions) {
    auto copy = event;
    run.env->schedule_at(
        event.at, [p = run.platform.get(), copy] {
          p->inject_interruption(copy);
        });
  }
  run.env->run_until(util::hours(horizon_hours));
  return run;
}

TEST(ChurnTest, AllJobsCompleteDespiteHeavyChurn) {
  auto run = run_churn(baseline::Preset::kGpunion, 2.0, 42);
  int completed = 0;
  for (const auto& job_id : run.job_ids) {
    const auto* record = run.platform->coordinator().job(job_id);
    ASSERT_NE(record, nullptr);
    if (record->phase == sched::JobPhase::kCompleted) ++completed;
  }
  // 8 x 6 reference-hours on a 22-GPU fleet over 48 h: all must finish even
  // with 2 interruptions/day/node.
  EXPECT_EQ(completed, 8);
}

TEST(ChurnTest, NoGpuLeaksAfterChurn) {
  auto run = run_churn(baseline::Preset::kGpunion, 2.5, 43);
  // After the horizon all jobs are done; every agent must show all GPUs free.
  for (const auto& machine : run.platform->machine_ids()) {
    auto* provider = run.platform->agent(machine);
    if (provider->state() != agent::AgentState::kActive) continue;
    EXPECT_EQ(provider->running_jobs(), 0u) << machine;
  }
  // Directory view consistent: no node reports negative or excess capacity.
  for (const auto* node : run.platform->coordinator().directory().all()) {
    EXPECT_GE(node->free_gpus, 0);
    EXPECT_LE(node->free_gpus, node->gpu_count);
  }
}

TEST(ChurnTest, CheckpointRestoreBeatsRestartFromScratch) {
  auto gpunion_run = run_churn(baseline::Preset::kGpunion, 2.0, 44);
  auto k8s_run = run_churn(baseline::Preset::kKubernetes, 2.0, 44);
  double gpunion_lost = 0, k8s_lost = 0;
  for (const auto& job_id : gpunion_run.job_ids) {
    gpunion_lost +=
        gpunion_run.platform->coordinator().job(job_id)->lost_work_seconds;
  }
  for (const auto& job_id : k8s_run.job_ids) {
    k8s_lost += k8s_run.platform->coordinator().job(job_id)->lost_work_seconds;
  }
  // Identical churn trace (same seed): ALC must lose strictly less work.
  EXPECT_LT(gpunion_lost, k8s_lost);
}

TEST(ChurnTest, LedgerConsistentAfterChurn) {
  auto run = run_churn(baseline::Preset::kGpunion, 2.0, 45);
  int open = 0;
  for (const auto& allocation :
       run.platform->database().allocation_ledger()) {
    if (allocation.outcome == db::AllocationOutcome::kRunning) ++open;
    if (allocation.outcome != db::AllocationOutcome::kRunning) {
      EXPECT_GE(allocation.ended_at, allocation.started_at);
    }
  }
  EXPECT_EQ(open, 0);  // nothing left dangling
}

TEST(ChurnTest, InterruptionsAreRecorded) {
  auto run = run_churn(baseline::Preset::kGpunion, 3.2, 46);
  // 3.2/day x 11 nodes x 2 days -> plenty of interruptions must register
  // (only nodes running jobs at the time record migrations).
  EXPECT_GT(run.platform->coordinator().stats().interruptions, 0);
  EXPECT_GT(run.platform->coordinator().migrations().interruption_count(),
            0u);
}

}  // namespace
}  // namespace gpunion
