// Fault-injection tests: lossy networks, flapping providers, storage
// exhaustion, cascade failures — the platform must degrade gracefully,
// never wedge.
#include <gtest/gtest.h>

#include "gpunion/client.h"
#include "gpunion/platform.h"

namespace gpunion {
namespace {

TEST(FaultInjectionTest, SurvivesLossyControlPlane) {
  sim::Environment env(101);
  CampusConfig config = paper_campus();
  config.network.drop_probability = 0.05;  // 5% of all messages vanish
  Platform platform(env, config);
  platform.start();
  env.run_until(10.0);

  Client client(platform, "vision");
  std::vector<std::string> jobs;
  for (int i = 0; i < 6; ++i) {
    auto job = client.submit_training(workload::cnn_small(), 0.5);
    if (job.ok()) jobs.push_back(*job);
  }
  env.run_until(env.now() + util::hours(4));
  // Lost dispatches / acks are retried via timeouts; everything completes.
  int completed = 0;
  for (const auto& job : jobs) {
    if (client.status(job)->phase == sched::JobPhase::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, static_cast<int>(jobs.size()));
}

TEST(FaultInjectionTest, FlappingProviderDoesNotWedgeScheduler) {
  sim::Environment env(102);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);

  Client client(platform, "nlp");
  auto job = client.submit_training(workload::cnn_small(), 2.0);
  ASSERT_TRUE(job.ok());
  env.run_until(env.now() + util::minutes(12));

  // One workstation flaps every ~2 minutes for an hour.
  agent::ProviderAgent* flapper = platform.agent_by_hostname("ws-vision-0");
  for (int i = 0; i < 15; ++i) {
    env.schedule_at(env.now() + util::minutes(2.0 + 4.0 * i),
                    [&platform, flapper] {
      if (flapper->state() == agent::AgentState::kActive) {
        platform.coordinator().set_cause_hint(
            flapper->machine_id(), agent::DepartureKind::kTemporary);
        flapper->depart_emergency();
      } else if (flapper->state() == agent::AgentState::kDeparted) {
        flapper->rejoin();
      }
    });
  }
  env.run_until(env.now() + util::hours(4));
  EXPECT_EQ(platform.coordinator().job(*job)->phase,
            sched::JobPhase::kCompleted);
  // The flapper ends in a coherent state either way.
  const auto* node =
      platform.coordinator().directory().find(flapper->machine_id());
  ASSERT_NE(node, nullptr);
  EXPECT_GE(node->free_gpus, 0);
  EXPECT_LE(node->free_gpus, node->gpu_count);
}

TEST(FaultInjectionTest, CheckpointStorageExhaustionDoesNotKillJobs) {
  sim::Environment env(103);
  CampusConfig config = paper_campus();
  config.storage.clear();
  config.storage.push_back({"nas-tiny", 600ULL << 20});  // 600 MiB total
  Platform platform(env, config);
  platform.start();
  env.run_until(5.0);

  Client client(platform, "bio");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(5);
  // cnn_small state is 400 MiB: the second full snapshot will not fit.
  auto job = client.submit_training(workload::cnn_small(), 1.0, options);
  ASSERT_TRUE(job.ok());
  env.run_until(env.now() + util::hours(1.5));
  // Checkpoint writes fail, but training itself completes.
  EXPECT_EQ(client.status(*job)->phase, sched::JobPhase::kCompleted);
}

TEST(FaultInjectionTest, SimultaneousMassDeparture) {
  sim::Environment env(104);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);

  Client client(platform, "theory");
  std::vector<std::string> jobs;
  for (int i = 0; i < 8; ++i) {
    SubmitOptions options;
    options.checkpoint_interval = util::minutes(5);
    auto job = client.submit_training(workload::cnn_small(), 3.0, options);
    ASSERT_TRUE(job.ok());
    jobs.push_back(*job);
  }
  env.run_until(env.now() + util::minutes(20));

  // Every 3090 workstation vanishes at once (power cut in one building).
  for (const auto& machine : platform.machine_ids()) {
    auto* provider = platform.agent(machine);
    if (provider->runtime().node().gpu_count() == 1 &&
        provider->state() == agent::AgentState::kActive) {
      platform.coordinator().set_cause_hint(
          machine, agent::DepartureKind::kEmergency);
      provider->depart_emergency();
    }
  }
  env.run_until(env.now() + util::hours(6));
  // Displaced jobs resettle on the surviving multi-GPU servers and finish.
  int completed = 0;
  for (const auto& job : jobs) {
    if (client.status(job)->phase == sched::JobPhase::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, 8);
}

TEST(FaultInjectionTest, DepartureDuringRestoreTransfer) {
  sim::Environment env(105);
  Platform platform(env, paper_campus());
  platform.start();
  env.run_until(5.0);

  Client client(platform, "nlp");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(5);
  // Big state -> restore takes tens of seconds on a 1 GbE workstation.
  auto job = client.submit_training(workload::transformer_small(), 3.0,
                                    options);
  ASSERT_TRUE(job.ok());
  env.run_until(env.now() + util::minutes(12));

  // First departure displaces the job...
  const auto* record = platform.coordinator().job(*job);
  ASSERT_EQ(record->phase, sched::JobPhase::kRunning);
  std::string first_node = record->node;
  platform.coordinator().set_cause_hint(first_node,
                                        agent::DepartureKind::kEmergency);
  platform.agent(first_node)->depart_emergency();
  // ...and the new host is killed seconds into the restore transfer.
  env.run_until(env.now() + 12.0);
  if (record->phase == sched::JobPhase::kRunning ||
      record->phase == sched::JobPhase::kDispatching) {
    if (!record->node.empty() && record->node != first_node) {
      platform.coordinator().set_cause_hint(
          record->node, agent::DepartureKind::kEmergency);
      platform.agent(record->node)->depart_emergency();
    }
  }
  env.run_until(env.now() + util::hours(8));
  EXPECT_EQ(record->phase, sched::JobPhase::kCompleted);
  EXPECT_GE(record->interruptions, 1);
}

}  // namespace
}  // namespace gpunion
