#include "workload/provider_behavior.h"

#include <gtest/gtest.h>

#include <map>

namespace gpunion::workload {
namespace {

TEST(ProviderBehaviorTest, Deterministic) {
  const std::vector<std::string> nodes = {"m-1", "m-2"};
  InterruptionModel model;
  const auto a = generate_interruptions(nodes, util::days(7), model,
                                        util::Rng(42));
  const auto b = generate_interruptions(nodes, util::days(7), model,
                                        util::Rng(42));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].machine_id, b[i].machine_id);
    EXPECT_EQ(a[i].kind, b[i].kind);
  }
}

TEST(ProviderBehaviorTest, RateRoughlyMatchesConfig) {
  const std::vector<std::string> nodes = {"m-1", "m-2", "m-3", "m-4"};
  InterruptionModel model;
  model.events_per_day = 2.0;
  model.min_downtime = 600;
  model.max_downtime = 1200;
  model.temporary_downtime = 600;
  const auto events = generate_interruptions(nodes, util::days(30), model,
                                             util::Rng(7));
  // 2/day x 4 nodes x 30 days = 240 expected, minus downtime dead-time;
  // accept a broad band.
  EXPECT_GT(events.size(), 120u);
  EXPECT_LT(events.size(), 280u);
}

TEST(ProviderBehaviorTest, NoOverlapPerNode) {
  const std::vector<std::string> nodes = {"m-1"};
  InterruptionModel model;
  model.events_per_day = 3.2;  // paper's maximum
  const auto events = generate_interruptions(nodes, util::days(14), model,
                                             util::Rng(11));
  for (std::size_t i = 1; i < events.size(); ++i) {
    // Next event strictly after the previous outage ended.
    EXPECT_GE(events[i].at, events[i - 1].at + events[i - 1].downtime);
  }
}

TEST(ProviderBehaviorTest, MixCoversAllKinds) {
  const std::vector<std::string> nodes = {"m-1", "m-2", "m-3", "m-4", "m-5"};
  InterruptionModel model;
  model.events_per_day = 2.0;
  const auto events = generate_interruptions(nodes, util::days(60), model,
                                             util::Rng(13));
  std::map<agent::DepartureKind, int> counts;
  for (const auto& event : events) ++counts[event.kind];
  EXPECT_GT(counts[agent::DepartureKind::kScheduled], 0);
  EXPECT_GT(counts[agent::DepartureKind::kEmergency], 0);
  EXPECT_GT(counts[agent::DepartureKind::kTemporary], 0);
}

TEST(ProviderBehaviorTest, DowntimesWithinBounds) {
  const std::vector<std::string> nodes = {"m-1", "m-2"};
  InterruptionModel model;
  const auto events = generate_interruptions(nodes, util::days(30), model,
                                             util::Rng(17));
  for (const auto& event : events) {
    EXPECT_GE(event.downtime, 60.0);
    if (event.kind != agent::DepartureKind::kTemporary) {
      EXPECT_LE(event.downtime, model.max_downtime + 1.0);
    }
  }
}

TEST(ProviderBehaviorTest, SortedGlobally) {
  const std::vector<std::string> nodes = {"m-1", "m-2", "m-3"};
  const auto events = generate_interruptions(nodes, util::days(30),
                                             InterruptionModel{},
                                             util::Rng(19));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
}

TEST(ProviderBehaviorTest, ZeroRateProducesNothing) {
  InterruptionModel model;
  model.events_per_day = 0.0;
  const auto events = generate_interruptions({"m-1"}, util::days(30), model,
                                             util::Rng(23));
  EXPECT_TRUE(events.empty());
}

}  // namespace
}  // namespace gpunion::workload
