#include "workload/partitioner.h"

#include <gtest/gtest.h>

namespace gpunion::workload {
namespace {

sched::NodeInfo node(const std::string& id, int free, double vram,
                     double tflops) {
  sched::NodeInfo info;
  info.machine_id = id;
  info.gpu_count = free;
  info.free_gpus = free;
  info.gpu_memory_gb = vram;
  info.compute_capability = 8.6;
  info.gpu_tflops = tflops;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  return info;
}

TEST(PartitionerTest, SmallModelGetsSingleStageOnFastestDevice) {
  const auto ws = node("ws", 1, 24.0, 35.6);
  const auto big = node("big", 8, 24.0, 82.6);
  auto plan = plan_partition(resnet50_model(), {&ws, &big});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->stages.size(), 1u);
  EXPECT_EQ(plan->stages[0].machine_id, "big");  // fastest single device
  EXPECT_DOUBLE_EQ(plan->stages[0].parameter_share, 1.0);
  EXPECT_GT(plan->pipeline_speedup, 2.0);  // 4090-class speedup
}

TEST(PartitionerTest, OversizedModelSplitsAcrossHeterogeneousGpus) {
  // ~24 GB of parameter state + activations: too big for one 24 GB card,
  // fits across an A6000 + 4090 mix.
  ModelDescription model = gpt2_xl_model();
  const auto a6000 = node("a6000", 4, 48.0, 38.7);
  const auto rtx = node("rtx", 8, 24.0, 82.6);
  auto plan = plan_partition(model, {&a6000, &rtx});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GE(plan->stages.size(), 1u);
  double total_share = 0;
  for (const auto& stage : plan->stages) {
    total_share += stage.parameter_share;
    // Every stage respects its device's VRAM (with 5% headroom).
    const double cap = stage.machine_id == "a6000" ? 48.0 : 24.0;
    EXPECT_LE(stage.memory_gb, cap * 0.95 + 1e-9);
  }
  EXPECT_NEAR(total_share, 1.0, 1e-6);
}

TEST(PartitionerTest, ModelBeyondFleetIsRejected) {
  ModelDescription model;
  model.parameter_count = 70'000'000'000ULL;  // 70 B: ~1 TB of state
  const auto ws = node("ws", 2, 24.0, 35.6);
  auto plan = plan_partition(model, {&ws});
  EXPECT_EQ(plan.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(PartitionerTest, SkipsBusyAndPausedNodes) {
  auto busy = node("busy", 0, 80.0, 19.5);  // no free GPUs
  auto paused = node("paused", 2, 80.0, 19.5);
  paused.accepting = false;
  const auto small = node("small", 1, 24.0, 35.6);
  auto plan = plan_partition(resnet50_model(), {&busy, &paused, &small});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->stages[0].machine_id, "small");
}

TEST(PartitionerTest, NoGpusAtAll) {
  auto plan = plan_partition(resnet50_model(), {});
  EXPECT_EQ(plan.status().code(), util::StatusCode::kUnavailable);
}

TEST(PartitionerTest, EmptyModelRejected) {
  ModelDescription model;
  model.parameter_count = 0;
  const auto ws = node("ws", 1, 24.0, 35.6);
  EXPECT_EQ(plan_partition(model, {&ws}).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, PipelineRateSetBySlowestStage) {
  // Force a two-stage split across unequal devices and check the speedup
  // is bounded by the weaker stage's throughput/share ratio.
  ModelDescription model = gpt2_xl_model();
  const auto strong = node("strong", 1, 24.0, 82.6);
  const auto weak = node("weak", 1, 24.0, 19.5);
  auto plan = plan_partition(model, {&strong, &weak});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->stages.size(), 2u);
  for (const auto& stage : plan->stages) {
    const double stage_rate =
        stage.relative_throughput / stage.parameter_share;
    EXPECT_GE(stage_rate * 1.001, plan->pipeline_speedup);
  }
  // The fastest device hosts the larger share (greedy by throughput).
  EXPECT_EQ(plan->stages[0].machine_id, "strong");
  EXPECT_GT(plan->stages[0].parameter_share,
            plan->stages[1].parameter_share);
}

TEST(PartitionerTest, MultiGpuNodesContributeEverySlot) {
  ModelDescription model = gpt2_xl_model();
  model.parameter_count = 3'000'000'000ULL;  // ~48 GB of parameter state
  const auto big = node("big", 8, 24.0, 82.6);
  auto plan = plan_partition(model, {&big});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GE(plan->stages.size(), 3u);  // needs several 24 GB slots
  for (const auto& stage : plan->stages) {
    EXPECT_EQ(stage.machine_id, "big");
  }
}

}  // namespace
}  // namespace gpunion::workload
