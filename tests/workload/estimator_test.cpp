#include "workload/estimator.h"

#include <gtest/gtest.h>

namespace gpunion::workload {
namespace {

TEST(EstimatorTest, Resnet50FitsConsumerGpu) {
  const auto model = resnet50_model();
  const double memory = estimate_gpu_memory_gb(model);
  EXPECT_GT(memory, 3.0);
  EXPECT_LT(memory, 16.0);  // runs on a 24 GB RTX 3090 with room to spare
  const auto requirements = estimate_requirements(model);
  EXPECT_LE(requirements.gpu_memory_gb, 24.0);
  EXPECT_DOUBLE_EQ(requirements.min_compute_capability, 7.0);
}

TEST(EstimatorTest, Gpt2XlNeedsDataCenterGpu) {
  const auto model = gpt2_xl_model();
  const auto requirements = estimate_requirements(model);
  EXPECT_GT(requirements.gpu_memory_gb, 24.0);  // beyond any 3090/4090
  EXPECT_DOUBLE_EQ(requirements.min_compute_capability, 8.0);
}

TEST(EstimatorTest, MemoryGrowsWithParameters) {
  ModelDescription small;
  small.parameter_count = 10'000'000;
  ModelDescription large = small;
  large.parameter_count = 1'000'000'000;
  EXPECT_LT(estimate_gpu_memory_gb(small), estimate_gpu_memory_gb(large));
}

TEST(EstimatorTest, MixedPrecisionSavesActivationAndWeightMemory) {
  ModelDescription fp32 = bert_base_model();
  fp32.mixed_precision = false;
  ModelDescription amp = bert_base_model();
  amp.mixed_precision = true;
  // Mixed precision halves weights/grads but adds fp32 master copies:
  // 2+2+8+4 = 16 bytes/param vs 4+4+8 = 16 bytes/param — equal on params,
  // so the comparison is dominated by activations; with identical
  // activations the two should be within 1%.
  EXPECT_NEAR(estimate_gpu_memory_gb(fp32), estimate_gpu_memory_gb(amp),
              estimate_gpu_memory_gb(fp32) * 0.01);
}

TEST(EstimatorTest, BatchSizeDrivesActivationMemory) {
  ModelDescription small_batch = resnet50_model();
  small_batch.batch_size = 8;
  ModelDescription big_batch = resnet50_model();
  big_batch.batch_size = 256;
  EXPECT_GT(estimate_gpu_memory_gb(big_batch),
            estimate_gpu_memory_gb(small_batch) + 5.0);
}

TEST(EstimatorTest, RequirementsIncludeHeadroom) {
  const auto model = bert_base_model();
  EXPECT_GE(estimate_requirements(model).gpu_memory_gb,
            estimate_gpu_memory_gb(model));
}

TEST(EstimatorTest, StateProfileMatchesAdamAccounting) {
  const auto model = bert_base_model();  // 110 M params
  const auto state = estimate_state(model);
  // fp32 weights + Adam m/v: 12 bytes per parameter.
  EXPECT_EQ(state.state_bytes, 110'000'000ULL * 12ULL);
  EXPECT_GT(state.serialize_bytes_per_sec, 1.0e9);
}

TEST(EstimatorTest, SerializationSlowsForHugeStates) {
  EXPECT_GT(estimate_state(resnet50_model()).serialize_bytes_per_sec,
            estimate_state(gpt2_xl_model()).serialize_bytes_per_sec);
}

TEST(EstimatorTest, ReferenceHours) {
  ModelDescription model;
  model.total_steps = 7200;
  model.reference_steps_per_sec = 2.0;
  EXPECT_DOUBLE_EQ(estimate_reference_hours(model), 1.0);
}

}  // namespace
}  // namespace gpunion::workload
