#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace gpunion::workload {
namespace {

std::vector<GroupDemand> two_groups() {
  GroupDemand heavy;
  heavy.name = "vision";
  heavy.burst_jobs_per_day = 6.0;
  heavy.idle_jobs_per_day = 0.5;
  heavy.sessions_per_day = 5.0;
  GroupDemand light;
  light.name = "theory";
  light.burst_jobs_per_day = 1.0;
  light.idle_jobs_per_day = 0.1;
  light.sessions_per_day = 2.0;
  light.phase_days = 7.0;
  return {heavy, light};
}

TEST(GeneratorTest, DeterministicForSeed) {
  const auto a =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(42));
  const auto b =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(42));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job.id, b[i].job.id);
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(1));
  const auto b =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(2));
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].job.id != b[i].job.id || a[i].at != b[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, SortedByTime) {
  const auto trace =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(7));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].at, trace[i].at);
  }
}

TEST(GeneratorTest, AllEventsWithinHorizon) {
  const auto trace =
      generate_campus_trace(two_groups(), util::days(7), util::Rng(9));
  for (const auto& event : trace) {
    EXPECT_GE(event.at, 0.0);
    EXPECT_LT(event.at, util::days(7));
    EXPECT_DOUBLE_EQ(event.job.submitted_at, event.at);
  }
}

TEST(GeneratorTest, HeavyGroupSubmitsMore) {
  const auto trace =
      generate_campus_trace(two_groups(), util::days(28), util::Rng(11));
  int heavy = 0, light = 0;
  for (const auto& event : trace) {
    if (event.job.owner_group == "vision") ++heavy;
    if (event.job.owner_group == "theory") ++light;
  }
  EXPECT_GT(heavy, light * 2);
}

TEST(GeneratorTest, MixContainsBothJobTypes) {
  const auto trace =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(13));
  const TraceStats stats = summarize(trace);
  EXPECT_GT(stats.training_jobs, 0);
  EXPECT_GT(stats.interactive_sessions, 0);
  EXPECT_GT(stats.total_training_hours, 0.0);
  EXPECT_EQ(stats.training_jobs + stats.interactive_sessions,
            static_cast<int>(trace.size()));
}

TEST(GeneratorTest, OwnedNodesPropagateToJobs) {
  auto groups = two_groups();
  groups[0].owned_nodes = {"m-abc"};
  const auto trace =
      generate_campus_trace(groups, util::days(7), util::Rng(17));
  for (const auto& event : trace) {
    if (event.job.owner_group == "vision") {
      EXPECT_EQ(event.job.owner_node, "m-abc");
    } else {
      EXPECT_TRUE(event.job.owner_node.empty());
    }
  }
}

TEST(GeneratorTest, DiurnalFactorShape) {
  // 4 AM on a weekday is quiet; 3 PM is peak.
  const double night = diurnal_factor(util::hours(4));
  const double afternoon = diurnal_factor(util::hours(15));
  EXPECT_LT(night, 0.3);
  EXPECT_GT(afternoon, 0.8);
  // Weekend damping: day 5 at 3 PM below day 0 at 3 PM.
  const double weekend = diurnal_factor(util::days(5) + util::hours(15));
  EXPECT_LT(weekend, afternoon);
}

TEST(GeneratorTest, UniqueJobIds) {
  const auto trace =
      generate_campus_trace(two_groups(), util::days(14), util::Rng(19));
  std::set<std::string> ids;
  for (const auto& event : trace) {
    EXPECT_TRUE(ids.insert(event.job.id).second)
        << "duplicate id " << event.job.id;
  }
}

}  // namespace
}  // namespace gpunion::workload
