#include "workload/job.h"
#include "workload/profiles.h"

#include <gtest/gtest.h>

namespace gpunion::workload {
namespace {

TEST(JobTest, SpeedFactorRelativeToReference) {
  EXPECT_DOUBLE_EQ(speed_factor(kReferenceTflops), 1.0);
  EXPECT_GT(speed_factor(82.6), 2.0);   // 4090 is >2x a 3090
  EXPECT_LT(speed_factor(19.5), 1.0);   // A100 FP32 below 3090
}

TEST(JobTest, CheckpointPauseScalesWithState) {
  StateProfile small{1ULL << 30, 0.3, 2.0e9};
  StateProfile large{8ULL << 30, 0.3, 2.0e9};
  EXPECT_NEAR(checkpoint_pause_seconds(small), 0.537, 0.01);
  EXPECT_NEAR(checkpoint_pause_seconds(large), 4.29, 0.05);
  EXPECT_GT(checkpoint_pause_seconds(large), checkpoint_pause_seconds(small));
}

TEST(ProfilesTest, FourCanonicalProfiles) {
  const auto& all = all_profiles();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].name, "cnn-small");
  EXPECT_EQ(all[3].name, "transformer-large");
  // Memory-intensive models carry more state (checkpoint sensitivity, §4).
  EXPECT_GT(transformer_large().state.state_bytes,
            cnn_small().state.state_bytes);
  // The large transformer needs a big-VRAM device.
  EXPECT_GT(transformer_large().requirements.gpu_memory_gb, 24.0);
}

TEST(ProfilesTest, MakeTrainingJob) {
  const JobSpec job =
      make_training_job("j-1", transformer_small(), 8.0, "nlp", 100.0);
  EXPECT_EQ(job.id, "j-1");
  EXPECT_EQ(job.type, JobType::kTraining);
  EXPECT_EQ(job.owner_group, "nlp");
  EXPECT_DOUBLE_EQ(job.reference_duration, 8.0 * 3600.0);
  EXPECT_DOUBLE_EQ(job.submitted_at, 100.0);
  EXPECT_EQ(job.requirements.gpu_memory_gb,
            transformer_small().requirements.gpu_memory_gb);
}

TEST(ProfilesTest, MakeInteractiveSession) {
  const JobSpec job = make_interactive_session("s-1", 2.0, "theory", 50.0);
  EXPECT_EQ(job.type, JobType::kInteractive);
  EXPECT_DOUBLE_EQ(job.reference_duration, 7200.0);
  EXPECT_EQ(job.checkpoint_interval, 0.0);  // sessions do not checkpoint
  EXPECT_GT(job.requirements.priority, 0);  // latency-sensitive
  EXPECT_EQ(job.image_ref, "jupyter-dl:latest");
}

TEST(JobTest, TypeNames) {
  EXPECT_EQ(job_type_name(JobType::kTraining), "training");
  EXPECT_EQ(job_type_name(JobType::kInteractive), "interactive");
  EXPECT_EQ(job_type_name(JobType::kBatch), "batch");
}

}  // namespace
}  // namespace gpunion::workload
