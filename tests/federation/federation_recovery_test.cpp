// Federation crash/restart: gateway recovery from durable forward and
// hand-off rows, receiver-side dedup across restarts, anti-entropy
// directory rejoin, and retry-backoff jitter de-correlation.
//
// The contracts under test:
//  * a region whose control plane (coordinator + gateway, one campus
//    process group) crashes mid-forward neither loses nor duplicates any
//    job — in-flight transfers resume under their original handoff id
//    (the receiver's durable dedup row absorbs the resend), unanswered
//    offers are repatriated to the home coordinator;
//  * a receiving region's restart keeps its guests: remote jobs and the
//    hand-off dedup table are rebuilt from provenance and handoff rows;
//  * a rejoining region anti-entropy-pulls the directory from one live
//    peer and converges in about a WAN round trip, against the multi-
//    second push-gossip wait the pull replaces (the PR 5 leftover);
//  * every retry/backoff delay is jittered per-gateway from forked RNG
//    streams, so two regions with identical policies retry at different
//    times instead of thundering-herd into a recovering peer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpunion/federated_platform.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

CampusConfig small_campus(const std::string& prefix, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

federation::RegionPolicy fast_policy() {
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 10.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 30.0;
  return policy;
}

RegionConfig make_region(const std::string& name, int nodes,
                         federation::RegionPolicy policy = fast_policy()) {
  return RegionConfig{name, small_campus(name, nodes), policy};
}

workload::JobSpec training(const std::string& id, const std::string& group,
                           double seconds, util::SimTime at) {
  auto job = workload::make_training_job(id, workload::cnn_small(),
                                         seconds / 3600.0, group, at);
  job.checkpoint_interval = 30.0;
  return job;
}

int completed_in(Platform& platform) {
  return platform.coordinator().stats().jobs_completed;
}

/// Advances the sim in `step` increments until `pred` holds or `deadline`.
template <typename Pred>
bool run_until_pred(sim::Environment& env, double deadline, double step,
                    Pred pred) {
  while (!pred()) {
    if (env.now() >= deadline) return false;
    env.run_until(env.now() + step);
  }
  return true;
}

TEST(FederationRecoveryTest, CrashMidForwardNeverLosesOrDuplicatesJobs) {
  sim::Environment env(17);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  const int submitted = 4;
  for (int i = 0; i < submitted; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 300.0, env.now()))
                    .is_ok());
  }

  // Catch a forward mid-flight: the job is withdrawn from alpha's
  // coordinator, the offer or transfer is on the WAN, and the only record
  // of it anywhere is the gateway's durable forward row.
  ASSERT_TRUE(run_until_pred(env, 120.0, 0.005, [&] {
    return fed.gateway("alpha").withdrawn_in_flight() >= 1;
  })) << "no forward ever went in flight";
  fed.crash_region_control_plane("alpha", 2.0);
  env.run_until(env.now() + 1500.0);

  const auto& gateway = fed.gateway("alpha");
  EXPECT_EQ(gateway.recovery_stats().recoveries, 1);
  EXPECT_GE(gateway.recovery_stats().forwards_resumed +
                gateway.recovery_stats().forwards_repatriated,
            1);
  // Exactly-once: every submitted job completed somewhere, none twice.
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")),
            submitted);
  // The forward accounting identity closes with nothing left in flight
  // (the coordinator's withdrawn counter is journal-restored, the
  // gateway's delivered/returned counters ride the same journal).
  EXPECT_EQ(gateway.withdrawn_in_flight(), 0);
  const auto& stats = gateway.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(
                fed.region("alpha").coordinator().stats().jobs_withdrawn),
            stats.transfers_delivered + stats.forwards_returned);
}

TEST(FederationRecoveryTest, ReceiverRestartKeepsGuestsAndDedupTable) {
  sim::Environment env(19);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  const int submitted = 3;
  for (int i = 0; i < submitted; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 300.0, env.now()))
                    .is_ok());
  }

  // Crash the RECEIVER once it hosts at least one admitted guest.
  ASSERT_TRUE(run_until_pred(env, 200.0, 0.05, [&] {
    return fed.gateway("beta").stats().remote_admitted >= 1 &&
           fed.gateway("beta").remote_jobs_active() >= 1;
  })) << "beta never admitted a guest";
  fed.crash_region_control_plane("beta", 2.0);
  env.run_until(env.now() + 1500.0);

  // The guest job and its provenance chain were rebuilt from the durable
  // tables, and so was the hand-off dedup row protecting it against an
  // at-least-once transfer resend.
  const auto& recovery = fed.gateway("beta").recovery_stats();
  EXPECT_EQ(recovery.recoveries, 1);
  EXPECT_GE(recovery.remote_jobs_rebuilt, 1);
  EXPECT_GE(recovery.handoffs_rebuilt, 1);
  // Nothing lost, nothing doubled — and the origin was told about its
  // remote jobs' outcomes after the receiver came back.
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")),
            submitted);
  EXPECT_GE(fed.gateway("alpha").stats().remote_completions, 1u);
}

TEST(FederationRecoveryTest, AntiEntropyPullConvergesFasterThanPushGossip) {
  const int regions = 5;
  const double crash_at = 40.0;
  const double downtime = 1.0;
  // Measures how long after recovery region r0's directory regains a full
  // view of the federation, with and without the anti-entropy pull.
  auto rejoin_time = [&](bool anti_entropy) {
    sim::Environment env(23);
    FederationConfig config;
    for (int i = 0; i < regions; ++i) {
      federation::RegionPolicy policy = fast_policy();
      policy.anti_entropy_pull = anti_entropy;
      config.regions.push_back(
          make_region("r" + std::to_string(i), 1, policy));
    }
    FederatedPlatform fed(env, config);
    fed.start();
    env.run_until(crash_at);
    EXPECT_EQ(fed.gateway("r0").directory().entries().size(),
              static_cast<std::size_t>(regions));
    fed.crash_region_control_plane("r0", downtime);
    const double recovered_at = env.now() + downtime;
    EXPECT_TRUE(run_until_pred(env, recovered_at + 60.0, 0.01, [&] {
      return fed.gateway("r0").directory().entries().size() ==
             static_cast<std::size_t>(regions);
    })) << "directory never reconverged";
    if (anti_entropy) {
      EXPECT_GE(fed.gateway("r0").stats().anti_entropy_pulls, 1u);
      EXPECT_GE(fed.stats().gossips_sent, 1u);
    }
    return env.now() - recovered_at;
  };

  const double with_pull = rejoin_time(true);
  const double push_only = rejoin_time(false);
  // The pull converges in about one WAN round trip; push-gossip has to
  // wait for peers' digest ticks to happen to select the rejoiner.
  EXPECT_LT(with_pull, 1.0) << "anti-entropy pull took " << with_pull << " s";
  EXPECT_LT(with_pull, push_only)
      << "pull (" << with_pull << " s) not faster than push-gossip alone ("
      << push_only << " s)";
}

TEST(FederationRecoveryTest, RetryBackoffJitterDecorrelatesGateways) {
  sim::Environment env(29);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 1));
  federation::RegionPolicy exact = fast_policy();
  exact.retry_jitter = 0;
  config.regions.push_back(make_region("gamma", 1, exact));
  FederatedPlatform fed(env, config);
  fed.start();

  // Identical policies, identical base delay — but each gateway draws from
  // its own forked stream, so the actual retry delays differ (this is what
  // keeps N regions from thundering-herd-retrying into a recovering peer
  // in lockstep).
  const double base = fast_policy().forward_retry_backoff;
  const double half_width = fast_policy().retry_jitter * base;
  std::vector<double> alpha_draws;
  std::vector<double> beta_draws;
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    alpha_draws.push_back(fed.gateway("alpha").jittered(base));
    beta_draws.push_back(fed.gateway("beta").jittered(base));
    EXPECT_GE(alpha_draws.back(), base - half_width - 1e-9);
    EXPECT_LE(alpha_draws.back(), base + half_width + 1e-9);
    if (alpha_draws.back() != beta_draws.back()) diverged = true;
  }
  EXPECT_TRUE(diverged) << "alpha and beta drew identical jitter sequences";
  // The draws are not constant either (a broken jitter that always returns
  // base would also 'de-correlate' nothing).
  bool varies = false;
  for (std::size_t i = 1; i < alpha_draws.size(); ++i) {
    if (alpha_draws[i] != alpha_draws[0]) varies = true;
  }
  EXPECT_TRUE(varies);
  // retry_jitter = 0 switches the behaviour off exactly.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(fed.gateway("gamma").jittered(base), base);
  }
}

}  // namespace
}  // namespace gpunion
