// Federation-layer tests under the legacy HUB topology: broker gossip
// digests, cross-campus forwarding with regional autonomy (admission caps,
// refusals), stale-digest re-routing, and checkpoint migration across a
// full-campus outage.  The offer/transfer/ack machinery exercised here is
// shared with the mesh topology; mesh-specific behaviour (replicated
// directories, WAN-cost ranking, chained re-forwarding) lives in
// federation_mesh_test.cpp and the randomized chaos harness.
#include <gtest/gtest.h>

#include <string>

#include "gpunion/federated_platform.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

CampusConfig small_campus(const std::string& prefix, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;  // off the control plane
  config.scrape_interval = 1e9;
  return config;
}

federation::RegionPolicy fast_policy() {
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 10.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 30.0;
  return policy;
}

RegionConfig make_region(const std::string& name, int nodes,
                         federation::RegionPolicy policy = fast_policy()) {
  return RegionConfig{name, small_campus(name, nodes), policy};
}

workload::JobSpec training(const std::string& id, const std::string& group,
                           double seconds, util::SimTime at) {
  auto job = workload::make_training_job(id, workload::cnn_small(),
                                         seconds / 3600.0, group, at);
  job.checkpoint_interval = 60.0;
  return job;
}

int completed_in(Platform& platform) {
  return platform.coordinator().stats().jobs_completed;
}

TEST(FederationBrokerTest, DigestGossipTracksRegionCapacity) {
  sim::Environment env(7);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 2));
  config.regions.push_back(make_region("beta", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(31.0);

  const auto& regions = fed.broker().regions();
  ASSERT_EQ(regions.size(), 2u);
  ASSERT_TRUE(regions.contains("alpha"));
  ASSERT_TRUE(regions.contains("beta"));
  EXPECT_EQ(regions.at("alpha").capacity.total_gpus, 2);
  EXPECT_EQ(regions.at("beta").capacity.total_gpus, 3);
  EXPECT_EQ(regions.at("alpha").capacity.nodes, 2);
  EXPECT_EQ(regions.at("beta").gateway_id, "gw-beta");

  // 31 s at a 5 s digest interval: first digest at start plus 6 ticks.
  EXPECT_GE(fed.broker().stats().digests_received, 2u * 6u);
  // Sequence numbers advance; nothing dropped over a loss-free WAN.
  EXPECT_EQ(fed.broker().stats().stale_digests_dropped, 0u);
  // Freshness: the newest digest is no older than one interval.
  EXPECT_LE(env.now() - regions.at("alpha").received_at, 5.5);
}

TEST(FederationForwardTest, OverflowForwardsToFreeRegionAndCompletes) {
  sim::Environment env(11);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Three 1-GPU jobs into a 1-GPU campus: one runs locally, two overflow.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 120.0, env.now()))
                    .is_ok());
  }
  env.run_until(600.0);

  const auto& alpha = fed.gateway("alpha").stats();
  const auto& beta = fed.gateway("beta").stats();
  EXPECT_GE(alpha.forwards_admitted, 2u);
  EXPECT_EQ(alpha.forwards_admitted, beta.remote_admitted);
  EXPECT_EQ(fed.region("alpha").coordinator().stats().jobs_withdrawn,
            static_cast<int>(alpha.forwards_admitted));
  // Every job completed somewhere in the federation.
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")),
            3);
  // The origin heard back about its forwarded jobs.
  EXPECT_EQ(alpha.remote_completions, alpha.forwards_admitted);
  EXPECT_EQ(fed.gateway("beta").remote_jobs_active(), 0);

  // Region-scoped provenance on both sides of the forward.
  const auto& beta_provenance =
      fed.region("beta").database().provenance_log();
  ASSERT_GE(beta_provenance.size(), 2u);
  for (const auto& row : beta_provenance) {
    EXPECT_EQ(row.origin_region, "alpha");
    EXPECT_EQ(row.executing_region, "beta");
  }
  const db::JobProvenance* origin_row =
      fed.region("alpha").database().provenance(beta_provenance[0].job_id);
  ASSERT_NE(origin_row, nullptr);
  EXPECT_EQ(origin_row->executing_region, "beta");

  // Federation traffic is accounted in its own class on the WAN and never
  // appears on a campus LAN.
  EXPECT_GT(fed.wan().bytes_sent(net::TrafficClass::kFederation), 0u);
  EXPECT_EQ(fed.region("alpha").network().bytes_sent(
                net::TrafficClass::kFederation),
            0u);
}

TEST(FederationForwardTest, AdmissionCapRefusesAndReroutes) {
  sim::Environment env(13);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  federation::RegionPolicy capped = fast_policy();
  capped.max_remote_jobs = 1;
  config.regions.push_back(make_region("beta", 3, capped));
  config.regions.push_back(make_region("gamma", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 150.0, env.now()))
                    .is_ok());
  }
  env.run_until(700.0);

  const auto& alpha = fed.gateway("alpha").stats();
  const auto& beta = fed.gateway("beta").stats();
  const auto& gamma = fed.gateway("gamma").stats();
  // Beta's autonomy held: it never hosted more than its cap at once, and
  // refused the rest, which re-routed to gamma.
  EXPECT_GE(beta.remote_refused_cap, 1u);
  EXPECT_GE(alpha.reroutes, 1u);
  EXPECT_GE(gamma.remote_admitted, 1u);
  EXPECT_EQ(beta.remote_admitted + gamma.remote_admitted,
            alpha.forwards_admitted);
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")) +
                completed_in(fed.region("gamma")),
            4);
}

TEST(FederationForwardTest, RemoteRefusalByPolicy) {
  sim::Environment env(17);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  federation::RegionPolicy closed = fast_policy();
  closed.accept_remote = false;
  config.regions.push_back(make_region("beta", 3, closed));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 60.0, env.now()))
                    .is_ok());
  }
  env.run_until(400.0);

  // Beta refused on policy; the job returned to alpha's queue and finished
  // there once the first job freed the GPU.
  EXPECT_GE(fed.gateway("beta").stats().remote_refused_policy, 1u);
  EXPECT_EQ(fed.gateway("beta").stats().remote_admitted, 0u);
  EXPECT_GE(fed.gateway("alpha").stats().forwards_returned, 1u);
  EXPECT_EQ(completed_in(fed.region("alpha")), 2);
  EXPECT_EQ(completed_in(fed.region("beta")), 0);
}

TEST(FederationForwardTest, StaleDigestIsRefusedThenRerouted) {
  sim::Environment env(19);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  // Beta gossips every 30 s: its t=30 digest shows 4 free GPUs, and the
  // broker keeps ranking it on that snapshot long after beta has filled up.
  federation::RegionPolicy quiet = fast_policy();
  quiet.digest_interval = 30.0;
  config.regions.push_back(make_region("beta", 4, quiet));
  config.regions.push_back(make_region("gamma", 2));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(31.0);  // beta's "4 free GPUs" digest is on the books

  // Fill beta with local work so its real free capacity is zero.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fed.region("beta")
                    .coordinator()
                    .submit(training("beta-local-" + std::to_string(i),
                                     "group-beta", 600.0, env.now()))
                    .is_ok());
  }
  // Alpha: one job occupies its only GPU, the second must leave the campus.
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("alpha-busy", "group-alpha", 600.0,
                                   env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("alpha-overflow", "group-alpha", 120.0,
                                   env.now()))
                  .is_ok());
  env.run_until(400.0);

  const auto& alpha = fed.gateway("alpha").stats();
  const auto& beta = fed.gateway("beta").stats();
  const auto& gamma = fed.gateway("gamma").stats();
  // The broker ranked beta first on stale data; beta's live admission
  // refused; the forward re-routed to gamma and ran there.
  EXPECT_GE(beta.remote_refused_capacity, 1u);
  EXPECT_GE(alpha.reroutes, 1u);
  EXPECT_GE(gamma.remote_admitted, 1u);
  EXPECT_GE(completed_in(fed.region("gamma")), 1);
  // The broker really was deciding on old news when it ranked beta.
  EXPECT_GT(fed.stats().digest_age_max, 2 * fast_policy().digest_interval);
}

TEST(FederationOutageTest, FullCampusOutageMigratesCheckpointsCrossCampus) {
  sim::Environment env(23);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 2));
  config.regions.push_back(make_region("beta", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Long training with periodic checkpoints on alpha.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("t-" + std::to_string(i), "group-alpha",
                                     600.0, env.now()))
                    .is_ok());
  }
  env.run_until(200.0);  // several checkpoint intervals of progress
  ASSERT_EQ(fed.region("alpha").coordinator().operational_stats().running, 2);

  fed.inject_region_outage("alpha", /*downtime=*/600.0);
  env.run_until(1400.0);

  const auto& alpha = fed.gateway("alpha").stats();
  const auto& beta = fed.gateway("beta").stats();
  // Both displaced jobs left the dead campus with their checkpoints and
  // resumed in beta from shipped durable progress.
  EXPECT_EQ(alpha.checkpoints_shipped, 2u);
  EXPECT_GT(alpha.checkpoint_bytes_shipped, 0u);
  EXPECT_EQ(beta.cross_campus_migrations_in, 2u);
  EXPECT_EQ(completed_in(fed.region("beta")), 2);
  EXPECT_EQ(alpha.remote_completions, 2u);
  // The shipped state crossed the WAN under the federation class.
  EXPECT_GE(fed.wan().bytes_sent(net::TrafficClass::kFederation),
            alpha.checkpoint_bytes_shipped);
  // Both sides can answer "whose job was this?".
  for (const std::string job_id : {"t-0", "t-1"}) {
    const db::JobProvenance* row =
        fed.region("beta").database().provenance(job_id);
    ASSERT_NE(row, nullptr) << job_id;
    EXPECT_EQ(row->origin_region, "alpha");
    EXPECT_EQ(row->executing_region, "beta");
  }
}

TEST(FederationForwardTest, MultiGpuJobUnplaceableOnFragmentedFleetForwards) {
  sim::Environment env(31);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  // Alpha has 2 free GPUs in aggregate — but on two separate single-GPU
  // workstations, so a 2-GPU job can never be placed locally.
  config.regions.push_back(make_region("alpha", 2));
  // Beta owns one 2xA100 server: the only node in the federation that
  // fits the job's shape.
  RegionConfig beta;
  beta.name = "beta";
  beta.campus.nodes.push_back({hw::server_2xa100("beta-big"), "group-beta"});
  beta.campus.storage.push_back({"nas-beta", 512ULL << 30});
  beta.campus.agent_defaults.telemetry_interval = 1e9;
  beta.campus.scrape_interval = 1e9;
  beta.policy = fast_policy();
  config.regions.push_back(std::move(beta));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  auto job = training("wide", "group-alpha", 120.0, env.now());
  job.requirements.gpu_count = 2;
  ASSERT_TRUE(fed.region("alpha").coordinator().submit(job).is_ok());
  env.run_until(400.0);

  // The per-node shape check forwarded it despite alpha's non-zero
  // aggregate free count, and beta's admission accepted what it can host.
  EXPECT_EQ(fed.gateway("alpha").stats().forwards_admitted, 1u);
  EXPECT_EQ(fed.gateway("beta").stats().remote_admitted, 1u);
  EXPECT_EQ(completed_in(fed.region("beta")), 1);
  const sched::JobRecord* record = fed.region("beta").coordinator().job("wide");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, sched::JobPhase::kCompleted);
}

TEST(FederationForwardTest, LossyWanNeverLosesJobs) {
  sim::Environment env(37);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 3));
  // One in five WAN messages silently vanishes.  Every protocol step must
  // recover: rankings/offers via timeouts, transfers via the ack/retry
  // loop (the origin keeps the job until the target acknowledges it).
  config.wan.drop_probability = 0.2;
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 120.0, env.now()))
                    .is_ok());
  }
  env.run_until(2000.0);

  // Conservation: every job completed in exactly one region; none were
  // lost to a dropped transfer and none ran twice.
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")),
            3);
  for (int i = 0; i < 3; ++i) {
    const std::string id = "job-" + std::to_string(i);
    const sched::JobRecord* in_alpha =
        fed.region("alpha").coordinator().job(id);
    const sched::JobRecord* in_beta = fed.region("beta").coordinator().job(id);
    EXPECT_TRUE((in_alpha != nullptr) != (in_beta != nullptr)) << id;
  }
  // No forward is stuck in flight once the dust settles.
  EXPECT_EQ(fed.gateway("alpha").forwards_in_flight(), 0);
}

TEST(FederationForwardTest, ForwardWhileLedgerUnflushedKeepsProvenance) {
  // Write-behind under federation: both campuses run the sharded DB with
  // flushing effectively disabled, so every withdraw/forward/admit happens
  // against ledgered-but-unflushed state.  Read-your-writes must hold on
  // both sides of the hand-off, and no job may be lost or duplicated.
  sim::Environment env(41);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 3));
  for (auto& region : config.regions) {
    region.campus.db.shard_count = 4;
    region.campus.db.write_behind = true;
    region.campus.db.flush_interval = 1e9;    // timer never fires
    region.campus.db.flush_threshold = 1u << 20;  // threshold never crossed
  }
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("wb-" + std::to_string(i),
                                     "group-alpha", 120.0, env.now()))
                    .is_ok());
  }
  env.run_until(600.0);

  const auto& alpha = fed.gateway("alpha").stats();
  ASSERT_GE(alpha.forwards_admitted, 2u);
  // Every withdraw-and-forward ran before ANY durable flush: the ledgers
  // still hold the entries, and the shards were never committed to.
  EXPECT_GT(fed.region("alpha").database().ledger().pending(), 0u);
  EXPECT_GT(fed.region("beta").database().ledger().pending(), 0u);
  EXPECT_EQ(fed.region("alpha").database().ledger().stats().flushes, 0u);
  EXPECT_EQ(fed.region("beta").database().ledger().stats().flushes, 0u);

  // Provenance is readable through the unflushed ledger on BOTH sides.
  int forwarded = 0;
  for (int i = 0; i < 3; ++i) {
    const std::string id = "wb-" + std::to_string(i);
    const db::JobProvenance* in_beta =
        fed.region("beta").database().provenance(id);
    if (in_beta == nullptr) continue;  // the job that ran at home
    ++forwarded;
    EXPECT_EQ(in_beta->origin_region, "alpha");
    EXPECT_EQ(in_beta->executing_region, "beta");
    const db::JobProvenance* in_alpha =
        fed.region("alpha").database().provenance(id);
    ASSERT_NE(in_alpha, nullptr) << id;
    EXPECT_EQ(in_alpha->executing_region, "beta");
  }
  EXPECT_EQ(forwarded, static_cast<int>(alpha.forwards_admitted));

  // No lost or duplicated job: each id is known to exactly one coordinator
  // and every job completed exactly once across the federation.
  for (int i = 0; i < 3; ++i) {
    const std::string id = "wb-" + std::to_string(i);
    const bool in_alpha =
        fed.region("alpha").coordinator().job(id) != nullptr;
    const bool in_beta = fed.region("beta").coordinator().job(id) != nullptr;
    EXPECT_TRUE(in_alpha != in_beta) << id;
  }
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")),
            3);

  // A late durable flush changes accounting, never contents.
  const auto alpha_log = fed.region("alpha").database().provenance_log();
  const std::size_t alpha_allocs =
      fed.region("alpha").database().allocation_ledger().size();
  EXPECT_GT(fed.region("alpha").database().flush_ledger(), 0u);
  EXPECT_GT(fed.region("beta").database().flush_ledger(), 0u);
  EXPECT_EQ(fed.region("alpha").database().ledger().pending(), 0u);
  ASSERT_EQ(fed.region("alpha").database().provenance_log().size(),
            alpha_log.size());
  EXPECT_EQ(fed.region("alpha").database().allocation_ledger().size(),
            alpha_allocs);
}

TEST(FederationOutageTest, NoCandidateRegionsKeepsJobQueuedLocally) {
  sim::Environment env(29);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  config.regions.push_back(make_region("alpha", 1));
  FederatedPlatform fed(env, config);  // a federation of one
  fed.start();
  env.run_until(5.0);

  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("only-busy", "group-alpha", 300.0,
                                   env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("only-waiting", "group-alpha", 60.0,
                                   env.now()))
                  .is_ok());
  env.run_until(500.0);

  // Rankings come back empty; the job never leaves and both complete
  // locally once capacity frees.
  EXPECT_GE(fed.gateway("alpha").stats().forwards_aborted, 1u);
  EXPECT_EQ(fed.gateway("alpha").stats().forwards_attempted, 0u);
  EXPECT_EQ(completed_in(fed.region("alpha")), 2);
}

}  // namespace
}  // namespace gpunion
