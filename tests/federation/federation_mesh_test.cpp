// Brokerless (mesh) federation tests: replicated directory gossip and
// convergence, placement queries answered with zero broker round-trips,
// WAN-cost-aware ranking, the interactive RTT budget, chained
// re-forwarding with acyclic provenance chains, and the hub-vs-mesh
// broker-death contrast.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpunion/federated_platform.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

CampusConfig small_campus(const std::string& prefix, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;  // off the control plane
  config.scrape_interval = 1e9;
  return config;
}

federation::RegionPolicy fast_policy() {
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 10.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 30.0;
  return policy;
}

RegionConfig make_region(const std::string& name, int nodes,
                         federation::RegionPolicy policy = fast_policy()) {
  return RegionConfig{name, small_campus(name, nodes), policy};
}

workload::JobSpec training(const std::string& id, const std::string& group,
                           double seconds, util::SimTime at) {
  auto job = workload::make_training_job(id, workload::cnn_small(),
                                         seconds / 3600.0, group, at);
  job.checkpoint_interval = 30.0;
  return job;
}

int completed_in(Platform& platform) {
  return platform.coordinator().stats().jobs_completed;
}

TEST(FederationMeshTest, GossipConvergesReplicasWithoutABroker) {
  sim::Environment env(7);
  FederationConfig config;  // topology defaults to kMesh
  config.regions.push_back(make_region("alpha", 2));
  config.regions.push_back(make_region("beta", 3));
  config.regions.push_back(make_region("gamma", 1));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(31.0);

  // There is deliberately nothing at the hub.
  EXPECT_EQ(fed.topology(), federation::FederationTopology::kMesh);
  EXPECT_THROW(fed.broker(), std::logic_error);

  // Every replica converged on every region's capacity, and the version
  // vectors agree (gossip quiesced between digest ticks).
  const std::map<std::string, int> gpus = {
      {"alpha", 2}, {"beta", 3}, {"gamma", 1}};
  std::map<std::string, std::uint64_t> reference_vector;
  for (const auto& name : fed.region_names()) {
    const federation::RegionDirectory& directory =
        fed.gateway(name).directory();
    ASSERT_EQ(directory.entries().size(), 3u) << name;
    for (const auto& [region, expected_gpus] : gpus) {
      const federation::DirectoryEntry* entry = directory.entry(region);
      ASSERT_NE(entry, nullptr) << name << " missing " << region;
      EXPECT_EQ(entry->capacity.total_gpus, expected_gpus) << region;
      EXPECT_EQ(entry->gateway_id, "gw-" + region);
      // Freshness: no entry is older than two gossip rounds.
      EXPECT_LE(env.now() - entry->generated_at,
                2 * fast_policy().digest_interval + 0.5)
          << name << " holds a stale view of " << region;
    }
    if (reference_vector.empty()) {
      reference_vector = directory.version_vector();
    } else {
      EXPECT_EQ(directory.version_vector(), reference_vector) << name;
    }
  }
  const FederatedStats stats = fed.stats();
  EXPECT_GT(stats.gossips_sent, 0u);
  EXPECT_GT(stats.gossips_received, 0u);
  EXPECT_EQ(stats.broker_digests_received, 0u);
}

TEST(FederationMeshTest, ReplayedGossipEntriesAreIgnored) {
  // Version dominance: a replica never regresses to an older entry no
  // matter how gossip is reordered.
  federation::RegionDirectory directory("here");
  federation::DirectoryEntry entry;
  entry.region = "there";
  entry.gateway_id = "gw-there";
  entry.capacity.free_gpus = 4;
  entry.version = 7;
  entry.generated_at = 100.0;
  ASSERT_TRUE(directory.merge(entry, 101.0));

  federation::DirectoryEntry stale = entry;
  stale.version = 6;
  stale.generated_at = 90.0;
  stale.capacity.free_gpus = 9;
  EXPECT_FALSE(directory.merge(stale, 102.0));
  EXPECT_EQ(directory.entry("there")->capacity.free_gpus, 4);
  EXPECT_EQ(directory.stats().merges_ignored, 1u);

  // A restarted origin resets its version counter but stamps fresh times:
  // generated_at dominance lets it back in immediately.
  federation::DirectoryEntry restarted = entry;
  restarted.version = 1;
  restarted.generated_at = 150.0;
  restarted.capacity.free_gpus = 2;
  EXPECT_TRUE(directory.merge(restarted, 151.0));
  EXPECT_EQ(directory.entry("there")->capacity.free_gpus, 2);

  // Own entry can never be overwritten by a relay.
  directory.update_self("gw-here", {}, 3, 160.0);
  federation::DirectoryEntry self_relay;
  self_relay.region = "here";
  self_relay.version = 99;
  self_relay.generated_at = 170.0;
  EXPECT_FALSE(directory.merge(self_relay, 171.0));
  EXPECT_EQ(directory.entry("here")->version, 3u);
}

TEST(FederationMeshTest, OverflowForwardsWithZeroBrokerRoundTrips) {
  sim::Environment env(11);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("beta", 3));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training("job-" + std::to_string(i),
                                     "group-alpha", 120.0, env.now()))
                    .is_ok());
  }
  env.run_until(600.0);

  const auto& alpha = fed.gateway("alpha").stats();
  // Steady-state placement queries were answered from the local replica:
  // zero broker round-trips, by construction and by count.
  EXPECT_EQ(alpha.ranking_requests, 0u);
  EXPECT_GE(alpha.local_rankings, 2u);
  EXPECT_GE(alpha.forwards_admitted, 2u);
  EXPECT_EQ(completed_in(fed.region("alpha")) +
                completed_in(fed.region("beta")),
            3);
  EXPECT_EQ(alpha.remote_completions, alpha.forwards_admitted);
  // Direct forwards carry a two-hop chain.
  for (const auto& [job_id, chain] : fed.gateway("beta").hosted_chains()) {
    EXPECT_EQ(chain, (std::vector<std::string>{"alpha", "beta"})) << job_id;
    const db::JobProvenance* row =
        fed.region("beta").database().provenance(job_id);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->route, "alpha>beta");
  }
}

TEST(FederationMeshTest, WanCostRankingPrefersNearFreshRegions) {
  sim::Environment env(13);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("near", 2));
  config.regions.push_back(make_region("far", 2));
  // Same capacity either way; only the WAN distance differs.
  config.links.push_back({"alpha", "near", 0.002});
  config.links.push_back({"alpha", "far", 0.080});
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("busy", "group-alpha", 600.0, env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("overflow", "group-alpha", 60.0,
                                   env.now()))
                  .is_ok());
  env.run_until(300.0);

  // The cheaper path won: the overflow ran nearby, nothing went far.
  EXPECT_GE(fed.gateway("near").stats().remote_admitted, 1u);
  EXPECT_EQ(fed.gateway("far").stats().remote_admitted, 0u);
  EXPECT_GE(completed_in(fed.region("near")), 1);
}

TEST(FederationMeshTest, BusyDigestRanksBehindFreeRegion) {
  sim::Environment env(17);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("busy", 2));
  config.regions.push_back(make_region("idle", 2));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Fill "busy" so its digest shows zero free GPUs before alpha overflows.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(fed.region("busy")
                    .coordinator()
                    .submit(training("busy-local-" + std::to_string(i),
                                     "group-busy", 600.0, env.now()))
                    .is_ok());
  }
  env.run_until(20.0);  // digests with the busy view have gossiped
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("holder", "group-alpha", 600.0, env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("overflow", "group-alpha", 60.0,
                                   env.now()))
                  .is_ok());
  env.run_until(300.0);

  // The busy-wait penalty routed the job to the digest-free region on the
  // first attempt — no detour through the full campus.
  EXPECT_GE(fed.gateway("idle").stats().remote_admitted, 1u);
  EXPECT_EQ(fed.gateway("busy").stats().remote_admitted, 0u);
  EXPECT_GE(completed_in(fed.region("idle")), 1);
}

TEST(FederationMeshTest, ChainedReforwardPreservesProvenanceAcrossOutages) {
  // The ReclaimNet-style pressure test: region BRAVO dies while hosting
  // ALPHA's displaced job; the job completes in CHARLIE with the full
  // alpha -> bravo -> charlie chain intact, and never loops back through
  // a region already in its chain.
  sim::Environment env(23);
  FederationConfig config;
  config.regions.push_back(make_region("alpha", 1));
  config.regions.push_back(make_region("bravo", 2));
  config.regions.push_back(make_region("charlie", 2));
  // bravo is nearby (wins the first forward), charlie farther.
  config.links.push_back({"alpha", "bravo", 0.002});
  config.links.push_back({"alpha", "charlie", 0.030});
  config.links.push_back({"bravo", "charlie", 0.030});
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Alpha's only GPU is pinned; the long checkpointing job must leave.
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("pin", "group-alpha", 2000.0, env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("wanderer", "group-alpha", 600.0,
                                   env.now()))
                  .is_ok());
  env.run_until(200.0);  // forwarded to bravo, running, checkpointing

  ASSERT_NE(fed.region("bravo").coordinator().job("wanderer"), nullptr)
      << "test setup: the job should be hosted in bravo by now";

  // Bravo goes dark past the horizon: its displaced guest must chain on.
  fed.inject_region_outage("bravo", 5000.0);
  env.run_until(1200.0);

  // The job finished in charlie...
  const sched::JobRecord* record =
      fed.region("charlie").coordinator().job("wanderer");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, sched::JobPhase::kCompleted);
  // ...with the full hop chain, acyclic and rooted at the true origin.
  const std::vector<std::string>* chain =
      fed.gateway("charlie").provenance_chain("wanderer");
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(*chain,
            (std::vector<std::string>{"alpha", "bravo", "charlie"}));
  const db::JobProvenance* row =
      fed.region("charlie").database().provenance("wanderer");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->origin_region, "alpha");
  EXPECT_EQ(row->executing_region, "charlie");
  EXPECT_EQ(row->route, "alpha>bravo>charlie");
  // Bravo refused to offer the job back to a region already in its chain
  // (alpha was fresh, feasible and otherwise rankable).
  EXPECT_GE(fed.gateway("bravo").stats().chain_loops_avoided, 1u);
  // The shipped progress seeded charlie's restore.
  EXPECT_GE(fed.gateway("charlie").stats().cross_campus_migrations_in, 1u);
  // The TRUE origin (alpha, not bravo) heard the completion.
  EXPECT_GE(fed.gateway("alpha").stats().remote_completions, 1u);
}

TEST(FederationMeshTest, InteractiveForwardHonorsRttBudget) {
  sim::Environment env(29);
  FederationConfig config;
  federation::RegionPolicy interactive = fast_policy();
  interactive.forward_interactive = true;
  interactive.max_interactive_rtt = 0.050;
  config.regions.push_back(make_region("home", 1, interactive));
  config.regions.push_back(make_region("near", 2, interactive));
  config.regions.push_back(make_region("far", 2, interactive));
  config.links.push_back({"home", "near", 0.004});   // 8 ms RTT: fits
  config.links.push_back({"home", "far", 0.060});    // 120 ms RTT: over
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Pin home's GPU with a whole-device training job FIRST (a later-queued
  // session would otherwise win the GPU as a shared slot), then ask for a
  // notebook.
  ASSERT_TRUE(fed.region("home")
                  .coordinator()
                  .submit(training("pin", "group-home", 900.0, env.now()))
                  .is_ok());
  env.run_until(8.0);  // pin holds the GPU (dispatch reserves immediately)
  ASSERT_TRUE(fed.region("home")
                  .coordinator()
                  .submit(workload::make_interactive_session(
                      "nb", 0.05, "group-home", env.now()))
                  .is_ok());
  env.run_until(400.0);

  // The session went to the region inside the budget, never the far one.
  EXPECT_GE(fed.gateway("near").stats().remote_admitted, 1u);
  EXPECT_EQ(fed.gateway("far").stats().remote_admitted, 0u);
  EXPECT_GE(fed.gateway("home").stats().interactive_rtt_filtered, 1u);
  EXPECT_EQ(fed.region("near").coordinator().stats().sessions_served, 1);
}

TEST(FederationMeshTest, InteractiveStaysPendingWhenNoRegionFitsBudget) {
  sim::Environment env(31);
  FederationConfig config;
  federation::RegionPolicy interactive = fast_policy();
  interactive.forward_interactive = true;
  interactive.max_interactive_rtt = 0.050;
  config.regions.push_back(make_region("home", 1, interactive));
  config.regions.push_back(make_region("far", 2, interactive));
  config.links.push_back({"home", "far", 0.060});  // 120 ms RTT: over budget
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  ASSERT_TRUE(fed.region("home")
                  .coordinator()
                  .submit(training("pin", "group-home", 100.0, env.now()))
                  .is_ok());
  env.run_until(8.0);  // pin holds the GPU before the session queues
  ASSERT_TRUE(fed.region("home")
                  .coordinator()
                  .submit(workload::make_interactive_session(
                      "nb", 0.05, "group-home", env.now()))
                  .is_ok());
  env.run_until(800.0);

  // The only candidate is beyond the budget: the session was REFUSED the
  // WAN (no offer ever sent) and served at home once the GPU freed up.
  EXPECT_EQ(fed.gateway("home").stats().forwards_attempted, 0u);
  EXPECT_GE(fed.gateway("home").stats().interactive_rtt_filtered, 1u);
  EXPECT_EQ(fed.gateway("far").stats().remote_admitted, 0u);
  EXPECT_EQ(fed.region("home").coordinator().stats().sessions_served, 1);
}

TEST(FederationMeshTest, HubDeathStallsHubModeButNotMesh) {
  // The brokerless acceptance scenario as a deterministic unit test: the
  // same overflow workload, hub killed before the forward window opens.
  // Hub mode strands the job pending; mesh mode does not notice.
  auto run_mode = [](federation::FederationTopology topology) {
    sim::Environment env(37);
    FederationConfig config;
    config.topology = topology;
    config.regions.push_back(make_region("alpha", 1));
    config.regions.push_back(make_region("beta", 2));
    FederatedPlatform fed(env, config);
    fed.start();
    env.run_until(5.0);
    for (int i = 0; i < 2; ++i) {
      EXPECT_TRUE(fed.region("alpha")
                      .coordinator()
                      .submit(training("job-" + std::to_string(i),
                                       "group-alpha", 300.0, env.now()))
                      .is_ok());
    }
    fed.kill_broker();
    env.run_until(500.0);
    return completed_in(fed.region("alpha")) +
           completed_in(fed.region("beta"));
  };

  // Mesh: both jobs complete (one locally, one forwarded peer-to-peer).
  EXPECT_EQ(run_mode(federation::FederationTopology::kMesh), 2);
  // Hub: the overflow job has nobody to ask; only the local one finishes
  // within the horizon.
  EXPECT_EQ(run_mode(federation::FederationTopology::kHub), 1);
}

TEST(FederationMeshTest, PartitionedRegionAgesOutOfRankingsThenReturns) {
  sim::Environment env(41);
  FederationConfig config;
  federation::RegionPolicy policy = fast_policy();
  policy.directory_hard_ttl = 20.0;
  config.regions.push_back(make_region("alpha", 1, policy));
  config.regions.push_back(make_region("beta", 2, policy));
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Cut beta off the WAN and let its replica entry age past the TTL.
  fed.set_region_wan_partitioned("beta", true);
  env.run_until(40.0);

  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("pin", "group-alpha", 600.0, env.now()))
                  .is_ok());
  ASSERT_TRUE(fed.region("alpha")
                  .coordinator()
                  .submit(training("overflow", "group-alpha", 60.0,
                                   env.now()))
                  .is_ok());
  env.run_until(100.0);
  // Beta is presumed unreachable: no offers were wasted on it.
  EXPECT_EQ(fed.gateway("alpha").stats().forwards_attempted, 0u);
  EXPECT_GE(fed.gateway("alpha").stats().forwards_aborted, 1u);

  // Heal: gossip resumes, beta re-enters rankings, the job completes there.
  fed.set_region_wan_partitioned("beta", false);
  env.run_until(400.0);
  EXPECT_GE(fed.gateway("beta").stats().remote_admitted, 1u);
  EXPECT_GE(completed_in(fed.region("beta")), 1);
}

}  // namespace
}  // namespace gpunion
