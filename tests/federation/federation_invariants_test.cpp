// Randomized chaos harness for the federation layer — the cross-campus
// counterpart of tests/sched/coordinator_invariants_test.cpp.
//
// Drives a seeded random schedule of submissions, node churn, FULL-REGION
// outages and WAN partitions against a small mesh federation (real
// Platforms, gateways, replicated directories, capped WAN) and after every
// settle asserts the invariants no deterministic scenario test covers:
//
//   * global job conservation — every submitted job is known to AT MOST
//     one coordinator (never admitted twice) and to at least one
//     coordinator or an in-flight gateway hand-off (never lost), at any
//     cut, under any combination of outages and partitions;
//   * provenance chains — acyclic (no region twice: the path-vector loop
//     avoidance rule), rooted at the origin region recorded in the DB,
//     terminating at the hosting region, matching the recorded route;
//   * per-gateway accounting — jobs_withdrawn == transfers_delivered +
//     forwards_returned + withdrawn_in_flight;
//   * per-region capacity — the O(1) capacity-summary counters equal a
//     full directory rescan;
//   * convergence — once partitions heal and gossip quiesces, every
//     replica holds every region at its ground-truth capacity, fresh, and
//     the version vectors agree.
//
// The seed of a failing campaign is printed via SCOPED_TRACE for exact
// reproduction (also settable with GPUNION_INVARIANT_SEED; CI runs three
// fixed seeds plus a randomized one on top of the default sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gpunion/federated_platform.h"
#include "util/rng.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

constexpr int kRegions = 3;
constexpr int kNodesPerRegion = 2;

CampusConfig chaos_campus(const std::string& prefix) {
  CampusConfig config;
  for (int i = 0; i < kNodesPerRegion; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

federation::RegionPolicy chaos_policy() {
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 8.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 20.0;
  policy.transfer_ack_timeout = 30.0;
  policy.reservation_ttl = 60.0;
  policy.directory_hard_ttl = 60.0;
  policy.forward_interactive = true;
  policy.max_interactive_rtt = 0.2;  // generous: partitions do the chaos
  return policy;
}

std::string region_name(int index) { return "r" + std::to_string(index); }

std::string join_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (const auto& hop : chain) {
    if (!out.empty()) out += '>';
    out += hop;
  }
  return out;
}

/// All cross-cutting federation invariants, checkable at ANY cut (mid-
/// partition, mid-outage, transfers in flight).
void check_invariants(FederatedPlatform& fed,
                      const std::vector<std::string>& submitted_ids) {
  // --- Global job conservation ----------------------------------------------
  for (const std::string& job_id : submitted_ids) {
    int hosted = 0;
    int in_flight = 0;
    for (const auto& name : fed.region_names()) {
      if (fed.region(name).coordinator().job(job_id) != nullptr) ++hosted;
      if (fed.gateway(name).forwarding(job_id)) ++in_flight;
    }
    EXPECT_LE(hosted, 1) << job_id << " admitted in two regions at once";
    EXPECT_GE(hosted + in_flight, 1) << job_id << " lost by the federation";
  }

  for (const auto& name : fed.region_names()) {
    auto& platform = fed.region(name);
    auto& gateway = fed.gateway(name);
    const auto& gw = gateway.stats();

    // --- Per-gateway accounting identity ------------------------------------
    EXPECT_EQ(static_cast<std::uint64_t>(
                  platform.coordinator().stats().jobs_withdrawn),
              gw.transfers_delivered + gw.forwards_returned +
                  static_cast<std::uint64_t>(gateway.withdrawn_in_flight()))
        << name << " withdrawal accounting drifted";

    // --- Provenance chains: acyclic, rooted, terminated, recorded -----------
    // The row to compare against is the latest one naming THIS region as
    // executor: a job that chained onward leaves a newer onward-hop row
    // (executing = the next region) in this database too.
    std::map<std::string, const db::JobProvenance*> hosted_rows;
    for (const auto& row : platform.database().provenance_log()) {
      if (row.executing_region == name) hosted_rows[row.job_id] = &row;
    }
    for (const auto& [job_id, chain] : gateway.hosted_chains()) {
      ASSERT_GE(chain.size(), 2u) << job_id;
      EXPECT_EQ(chain.back(), name)
          << job_id << " chain does not end at its host";
      std::set<std::string> unique(chain.begin(), chain.end());
      EXPECT_EQ(unique.size(), chain.size())
          << job_id << " chain has a cycle: " << join_chain(chain);
      auto row = hosted_rows.find(job_id);
      ASSERT_NE(row, hosted_rows.end())
          << job_id << " hosted without provenance";
      EXPECT_EQ(row->second->origin_region, chain.front())
          << job_id << " chain not rooted at the recorded origin";
      EXPECT_EQ(row->second->route, join_chain(chain)) << job_id;
    }

    // --- Capacity counters vs a directory rescan ----------------------------
    sched::CapacitySummary summary =
        platform.coordinator().directory().capacity_summary();
    int free_gpus = 0;
    int free_slots = 0;
    int schedulable = 0;
    for (const sched::NodeInfo* node :
         platform.coordinator().directory().all()) {
      EXPECT_GE(node->free_gpus, 0) << node->machine_id;
      EXPECT_LE(node->free_gpus, node->gpu_count) << node->machine_id;
      if (node->schedulable()) {
        free_gpus += node->free_gpus;
        free_slots += node->free_shared_slots;
        ++schedulable;
      }
    }
    EXPECT_EQ(summary.free_gpus, free_gpus) << name;
    EXPECT_EQ(summary.free_shared_slots, free_slots) << name;
    EXPECT_EQ(summary.schedulable_nodes, schedulable) << name;
  }
}

/// Post-drain checks: everything settled, replicas converged.
void check_quiesced(FederatedPlatform& fed,
                    const std::vector<std::string>& submitted_ids) {
  // Nothing in flight anywhere, and every job is in exactly one region.
  for (const auto& name : fed.region_names()) {
    EXPECT_EQ(fed.gateway(name).forwards_in_flight(), 0) << name;
  }
  for (const std::string& job_id : submitted_ids) {
    int hosted = 0;
    for (const auto& name : fed.region_names()) {
      const sched::JobRecord* record =
          fed.region(name).coordinator().job(job_id);
      if (record == nullptr) continue;
      ++hosted;
      EXPECT_TRUE(sched::job_phase_terminal(record->phase))
          << job_id << " still " << sched::job_phase_name(record->phase)
          << " after the drain";
    }
    EXPECT_EQ(hosted, 1) << job_id;
  }

  // Hand-off atomicity at quiescence: every transfer the senders count
  // delivered is one the receivers count hosted.
  std::uint64_t delivered = 0;
  std::uint64_t taken = 0;
  for (const auto& name : fed.region_names()) {
    delivered += fed.gateway(name).stats().transfers_delivered;
    taken += fed.gateway(name).stats().remote_jobs_taken;
  }
  EXPECT_EQ(delivered, taken);

  // Replica convergence to ground truth: capacity is stable at the end of
  // the drain, so every replica's entry for every region must match that
  // region's live summary, be fresh, and the version vectors must agree.
  std::map<std::string, std::uint64_t> reference_vector;
  bool have_reference = false;
  for (const auto& name : fed.region_names()) {
    const federation::RegionDirectory& directory =
        fed.gateway(name).directory();
    for (const auto& other : fed.region_names()) {
      const federation::DirectoryEntry* entry = directory.entry(other);
      ASSERT_NE(entry, nullptr) << name << " lost track of " << other;
      sched::CapacitySummary truth =
          fed.region(other).coordinator().directory().capacity_summary();
      EXPECT_EQ(entry->capacity.nodes, truth.nodes) << name << "/" << other;
      EXPECT_EQ(entry->capacity.total_gpus, truth.total_gpus)
          << name << "/" << other;
      EXPECT_EQ(entry->capacity.free_gpus, truth.free_gpus)
          << name << "/" << other;
      EXPECT_EQ(entry->capacity.schedulable_nodes, truth.schedulable_nodes)
          << name << "/" << other;
      EXPECT_LE(fed.env().now() - entry->generated_at,
                2 * chaos_policy().digest_interval + 0.5)
          << name << " holds a stale " << other;
    }
    auto vector = directory.version_vector();
    if (!have_reference) {
      reference_vector = vector;
      have_reference = true;
    } else {
      EXPECT_EQ(vector, reference_vector) << name;
    }
  }
}

/// Aggregate coverage across the sweep: green means nothing unless the
/// campaigns actually crossed campuses, died mid-host and partitioned.
struct SweepCoverage {
  int submitted = 0;
  int completed = 0;
  int interruptions = 0;
  std::uint64_t transfers_delivered = 0;
  std::uint64_t reroutes_or_returns = 0;
  std::size_t longest_chain = 0;
  int region_outages = 0;
  int wan_partitions = 0;
};

void run_one_seed(std::uint64_t seed, int rounds,
                  SweepCoverage* coverage = nullptr) {
  SCOPED_TRACE("GPUNION_INVARIANT_SEED=" + std::to_string(seed));
  util::Rng rng(seed);
  sim::Environment env(seed);

  FederationConfig config;
  for (int r = 0; r < kRegions; ++r) {
    config.regions.push_back(
        {region_name(r), chaos_campus(region_name(r)), chaos_policy()});
  }
  // Asymmetric WAN distances, fixed per seed.
  for (int a = 0; a < kRegions; ++a) {
    for (int b = a + 1; b < kRegions; ++b) {
      config.links.push_back(
          {region_name(a), region_name(b), rng.uniform(0.003, 0.040)});
    }
  }
  config.wan.base_latency = 0.010;
  config.wan.federation_wan_gbps = 1.0;
  config.metrics_interval = 1e9;
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  int next_job = 0;
  std::vector<std::string> submitted_ids;
  std::vector<bool> partitioned(kRegions, false);
  int outages = 0;
  int partitions = 0;

  auto random_region = [&] {
    return static_cast<int>(rng.uniform_int(0, kRegions - 1));
  };
  auto submit_one = [&] {
    const int r = random_region();
    auto& coordinator = fed.region(region_name(r)).coordinator();
    const std::string id = "job-" + std::to_string(next_job++);
    const std::string group = "group-" + region_name(r);
    if (rng.bernoulli(0.25)) {
      (void)coordinator.submit(workload::make_interactive_session(
          id, rng.uniform(0.005, 0.012), group, env.now()));
    } else {
      auto job = workload::make_training_job(
          id, workload::cnn_small(), rng.uniform(0.006, 0.02), group,
          env.now());
      job.checkpoint_interval = 10.0;
      (void)coordinator.submit(std::move(job));
    }
    submitted_ids.push_back(id);
  };

  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const int burst = static_cast<int>(rng.uniform_int(1, 4));
    for (int b = 0; b < burst; ++b) {
      switch (rng.uniform_int(0, 9)) {
        case 0:
        case 1:
        case 2:
        case 3:
          submit_one();
          break;
        case 4: {  // single-node churn inside a random region
          const int r = random_region();
          workload::Interruption event;
          event.at = env.now();
          event.machine_id = Platform::machine_id_for(
              region_name(r) + "-ws-" +
              std::to_string(rng.uniform_int(0, kNodesPerRegion - 1)));
          event.kind = rng.bernoulli(0.4)
                           ? agent::DepartureKind::kScheduled
                           : (rng.bernoulli(0.5)
                                  ? agent::DepartureKind::kEmergency
                                  : agent::DepartureKind::kTemporary);
          event.downtime = rng.uniform(10.0, 50.0);
          fed.region(region_name(r)).inject_interruption(event);
          break;
        }
        case 5: {  // full-region outage: displaced guests must chain on
          const int r = random_region();
          fed.inject_region_outage(region_name(r),
                                   rng.uniform(30.0, 90.0));
          ++outages;
          break;
        }
        case 6: {  // WAN partition of one region's gateway
          const int r = random_region();
          if (partitioned[r]) break;
          partitioned[r] = true;
          ++partitions;
          fed.set_region_wan_partitioned(region_name(r), true);
          env.schedule_after(rng.uniform(10.0, 40.0), [&fed, &partitioned,
                                                       r] {
            partitioned[r] = false;
            fed.set_region_wan_partitioned(region_name(r), false);
          });
          break;
        }
        case 7: {  // cancel a random job wherever it currently lives
          if (submitted_ids.empty()) break;
          const std::string& id =
              submitted_ids[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(submitted_ids.size() - 1)))];
          for (const auto& name : fed.region_names()) {
            if (fed.region(name).coordinator().job(id) != nullptr) {
              (void)fed.region(name).coordinator().cancel(id);
              break;
            }
          }
          break;
        }
        default:
          submit_one();
          break;
      }
    }
    env.run_until(env.now() + rng.uniform(5.0, 30.0));
    check_invariants(fed, submitted_ids);
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Drain: heal every partition, let outage downtimes lapse, transfers
  // retry through, queues empty and gossip quiesce — then re-assert
  // everything plus the quiescence-only invariants.
  for (int r = 0; r < kRegions; ++r) {
    partitioned[r] = false;
    fed.set_region_wan_partitioned(region_name(r), false);
  }
  env.run_until(env.now() + 700.0);
  // Snap the cut just past a gossip tick (all gateways tick on the same
  // 5 s grid): the final pushes have landed everywhere and no new tick has
  // fired, so replica version vectors must agree EXACTLY.
  const double tick = chaos_policy().digest_interval;
  env.run_until(std::ceil(env.now() / tick) * tick + 0.5);
  check_invariants(fed, submitted_ids);
  if (::testing::Test::HasFatalFailure()) return;
  check_quiesced(fed, submitted_ids);

  if (coverage != nullptr) {
    coverage->submitted += static_cast<int>(submitted_ids.size());
    for (const auto& name : fed.region_names()) {
      const auto& stats = fed.region(name).coordinator().stats();
      coverage->completed += stats.jobs_completed;
      coverage->interruptions += stats.interruptions;
      const auto& gw = fed.gateway(name).stats();
      coverage->transfers_delivered += gw.transfers_delivered;
      coverage->reroutes_or_returns += gw.reroutes + gw.forwards_returned;
      for (const auto& [job_id, chain] : fed.gateway(name).hosted_chains()) {
        coverage->longest_chain =
            std::max(coverage->longest_chain, chain.size());
      }
    }
    coverage->region_outages += outages;
    coverage->wan_partitions += partitions;
  }
}

TEST(FederationInvariantsTest, RandomizedChaosCampaign) {
  // GPUNION_INVARIANT_SEED pins the campaign to one seed family (CI runs
  // three fixed seeds plus a $RANDOM one); the default sweep covers 60.
  const char* pinned = std::getenv("GPUNION_INVARIANT_SEED");
  SweepCoverage coverage;
  int campaigns = 0;
  if (pinned != nullptr) {
    const std::uint64_t base = std::strtoull(pinned, nullptr, 10);
    for (std::uint64_t seed = base; seed < base + 15; ++seed) {
      run_one_seed(seed, /*rounds=*/10, &coverage);
      ++campaigns;
      if (::testing::Test::HasFatalFailure()) return;
    }
  } else {
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
      run_one_seed(seed, /*rounds=*/10, &coverage);
      ++campaigns;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The sweep only counts if it actually crossed campuses, killed regions
  // mid-host and cut the WAN (floors are per-campaign averages, so the
  // pinned-seed CI mode is held to the same standard as the default
  // sweep).
  EXPECT_GT(coverage.submitted, 5 * campaigns);
  EXPECT_GT(coverage.completed, 3 * campaigns);
  EXPECT_GT(coverage.interruptions, campaigns);
  EXPECT_GT(coverage.transfers_delivered,
            static_cast<std::uint64_t>(campaigns) / 4);
  EXPECT_GT(coverage.region_outages, campaigns / 4);
  EXPECT_GT(coverage.wan_partitions, campaigns / 4);
  EXPECT_GE(coverage.longest_chain, 2u);
}

}  // namespace
}  // namespace gpunion
