// Protocol robustness: the agent/coordinator pair must self-heal when
// individual messages are lost (at-least-once delivery semantics).
#include <gtest/gtest.h>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "sched/coordinator.h"
#include "workload/profiles.h"

namespace gpunion::agent {
namespace {

/// Transport wrapper that drops the next N messages of a given kind.
class DroppingTransport : public net::Transport {
 public:
  explicit DroppingTransport(net::Transport& inner) : inner_(inner) {}

  void drop_next(int kind, int count) { drops_[kind] += count; }
  int dropped() const { return total_dropped_; }

  void register_endpoint(const net::NodeId& id,
                         net::MessageHandler handler) override {
    inner_.register_endpoint(id, std::move(handler));
  }
  void unregister_endpoint(const net::NodeId& id) override {
    inner_.unregister_endpoint(id);
  }
  util::Status send(net::Message msg) override {
    auto it = drops_.find(msg.kind);
    if (it != drops_.end() && it->second > 0) {
      --it->second;
      ++total_dropped_;
      return util::Status();  // silently swallowed
    }
    return inner_.send(std::move(msg));
  }

 private:
  net::Transport& inner_;
  std::map<int, int> drops_;
  int total_dropped_ = 0;
};

class RobustnessTest : public ::testing::Test {
 protected:
  RobustnessTest()
      : env_(5), net_(env_, {}), transport_(net_) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
    coordinator_ = std::make_unique<sched::Coordinator>(
        env_, transport_, database_, store_, sched::CoordinatorConfig{});
    coordinator_->start();
    node_ = std::make_unique<hw::NodeModel>(hw::workstation_3090("ws-0"));
    AgentConfig config;
    config.owner_group = "lab";
    config.enable_telemetry = false;
    agent_ = std::make_unique<ProviderAgent>(env_, transport_, *node_,
                                             registry_, store_, config);
  }

  sim::Environment env_;
  net::SimNetwork net_;
  DroppingTransport transport_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<sched::Coordinator> coordinator_;
  std::unique_ptr<hw::NodeModel> node_;
  std::unique_ptr<ProviderAgent> agent_;
};

TEST_F(RobustnessTest, RegistrationRetriesAfterLostResponse) {
  transport_.drop_next(kRegisterResponse, 1);
  agent_->join();
  env_.run_until(5.0);
  EXPECT_EQ(agent_->state(), AgentState::kOffline);  // first response lost
  env_.run_until(30.0);  // retry fires at +10 s
  EXPECT_EQ(agent_->state(), AgentState::kActive);
  EXPECT_GE(transport_.dropped(), 1);
}

TEST_F(RobustnessTest, LostDispatchResultRecoversViaIdempotentRetry) {
  agent_->join();
  env_.run_until(2.0);
  transport_.drop_next(kDispatchResult, 1);  // the accept vanishes
  ASSERT_TRUE(coordinator_
                  ->submit(workload::make_training_job(
                      "job-1", workload::cnn_small(), 0.3, "lab", env_.now()))
                  .is_ok());
  // Dispatch timeout (30 s) requeues; the retry hits the same agent, which
  // re-acknowledges the run it already started.
  env_.run_until(env_.now() + 120.0);
  EXPECT_EQ(coordinator_->job("job-1")->phase, sched::JobPhase::kRunning);
  EXPECT_EQ(agent_->running_jobs(), 1u);  // exactly one run, no double start
  env_.run_until(env_.now() + util::hours(0.5));
  EXPECT_EQ(coordinator_->job("job-1")->phase, sched::JobPhase::kCompleted);
}

TEST_F(RobustnessTest, LostCompletionReconciledFromHeartbeat) {
  agent_->join();
  env_.run_until(2.0);
  transport_.drop_next(kJobCompleted, 1);
  ASSERT_TRUE(coordinator_
                  ->submit(workload::make_training_job(
                      "job-1", workload::cnn_small(), 0.1, "lab", env_.now()))
                  .is_ok());
  env_.run_until(env_.now() + util::hours(0.2));
  EXPECT_EQ(agent_->running_jobs(), 0u);  // agent finished it
  // The completion notice was dropped; the next heartbeats carry an empty
  // job list and the coordinator reconciles the record as completed.
  env_.run_until(env_.now() + 30.0);
  EXPECT_EQ(coordinator_->job("job-1")->phase, sched::JobPhase::kCompleted);
  const auto allocations = database_.allocations_for_job("job-1");
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].outcome, db::AllocationOutcome::kCompleted);
}

TEST_F(RobustnessTest, LostKillSwitchNoticeReconciledAsLostRun) {
  agent_->join();
  env_.run_until(2.0);
  ASSERT_TRUE(coordinator_
                  ->submit(workload::make_training_job(
                      "job-1", workload::cnn_small(), 2.0, "lab", env_.now()))
                  .is_ok());
  env_.run_until(env_.now() + util::minutes(12));  // one checkpoint done
  ASSERT_EQ(coordinator_->job("job-1")->phase, sched::JobPhase::kRunning);

  transport_.drop_next(kKillSwitchNotice, 1);
  agent_->kill_switch();
  // Heartbeats no longer list the job -> coordinator requeues it, restoring
  // from the checkpoint, and the (only) node runs it again.
  env_.run_until(env_.now() + util::minutes(3));
  const auto* record = coordinator_->job("job-1");
  EXPECT_EQ(record->phase, sched::JobPhase::kRunning);
  EXPECT_GE(record->interruptions, 1);
  EXPECT_GT(record->checkpointed_progress, 0.0);
}

TEST_F(RobustnessTest, LostImagePullRetried) {
  // With a registry endpoint present, a dispatch for an uncached image
  // triggers a pull; the first request vanishes and the agent re-requests.
  net_.register_endpoint("image-registry", [this](net::Message&& msg) {
    if (msg.kind != kImagePullRequest) return;
    const auto& request =
        std::any_cast<const ImagePullRequest&>(msg.payload);
    net::Message data;
    data.from = "image-registry";
    data.to = request.requester;
    data.kind = kImageData;
    data.traffic_class = net::TrafficClass::kImage;
    data.size_bytes = 1 << 20;
    data.payload = ImageData{request.image_ref};
    ASSERT_TRUE(net_.send(std::move(data)).is_ok());
  });
  agent_->join();
  env_.run_until(2.0);
  transport_.drop_next(kImagePullRequest, 1);
  ASSERT_TRUE(coordinator_
                  ->submit(workload::make_training_job(
                      "job-1", workload::cnn_small(), 0.5, "lab", env_.now()))
                  .is_ok());
  env_.run_until(env_.now() + 30.0);
  // Stalled: dispatched (container created) but compute never started.
  EXPECT_EQ(coordinator_->job("job-1")->phase, sched::JobPhase::kRunning);
  EXPECT_DOUBLE_EQ(agent_->job_progress("job-1"), 0.0);
  // The retry at +90 s re-requests the image and compute begins.
  env_.run_until(env_.now() + 150.0);
  EXPECT_GT(agent_->job_progress("job-1"), 0.0);
}

}  // namespace
}  // namespace gpunion::agent
