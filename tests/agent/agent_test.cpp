// ProviderAgent behaviour against a scripted fake coordinator.
#include "agent/provider_agent.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/sim_network.h"
#include "workload/profiles.h"

namespace gpunion::agent {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  AgentTest()
      : env_(1),
        net_(env_, {}),
        node_(hw::workstation_3090("ws-test")) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(registry_
                    .push(container::make_image("jupyter-dl", "latest",
                                                "nvidia/cuda:12.1-runtime",
                                                8ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());

    // Fake coordinator: record everything, auto-accept registrations.
    net_.register_endpoint("coordinator", [this](net::Message&& msg) {
      inbox_.push_back(msg.kind);
      if (msg.kind == kRegisterRequest) {
        RegisterResponse response;
        response.accepted = true;
        response.auth_token = "token";
        response.heartbeat_interval = 2.0;
        net::Message reply;
        reply.from = "coordinator";
        reply.to = std::any_cast<const RegisterRequest&>(msg.payload)
                       .machine_id;
        reply.kind = kRegisterResponse;
        reply.size_bytes = kRegisterBytes;
        reply.payload = response;
        ASSERT_TRUE(net_.send(std::move(reply)).is_ok());
      } else {
        payloads_[msg.kind].push_back(msg.payload);
      }
    });
    // NAS endpoint: respond to restore requests like the platform does.
    net_.register_endpoint("nas", [this](net::Message&& msg) {
      if (msg.kind != kRestoreRequest) return;
      const auto& request =
          std::any_cast<const RestoreRequest&>(msg.payload);
      net::Message data;
      data.from = "nas";
      data.to = request.requester;
      data.kind = kRestoreData;
      data.traffic_class = net::TrafficClass::kMigration;
      data.size_bytes = std::max<std::uint64_t>(1, request.bytes);
      data.payload = RestoreData{request.job_id};
      ASSERT_TRUE(net_.send(std::move(data)).is_ok());
    });

    AgentConfig config;
    config.owner_group = "vision";
    config.heartbeat_interval = 2.0;
    config.enable_telemetry = false;
    agent_ = std::make_unique<ProviderAgent>(env_, net_, node_, registry_,
                                             store_, config);
  }

  void join_and_settle() {
    agent_->join();
    env_.run_until(env_.now() + 1.0);
    ASSERT_EQ(agent_->state(), AgentState::kActive);
  }

  void dispatch_training(const std::string& job_id, double hours = 2.0,
                         double start_progress = 0.0,
                         std::uint64_t restore_bytes = 0) {
    workload::JobSpec job = workload::make_training_job(
        job_id, workload::cnn_small(), hours, "nlp", env_.now());
    DispatchRequest request;
    request.job = std::move(job);
    request.start_progress = start_progress;
    request.restore_bytes = restore_bytes;
    if (restore_bytes > 0) request.restore_from = "nas";
    net::Message msg;
    msg.from = "coordinator";
    msg.to = agent_->machine_id();
    msg.kind = kDispatch;
    msg.size_bytes = 500;
    msg.payload = std::move(request);
    ASSERT_TRUE(net_.send(std::move(msg)).is_ok());
  }

  int count(int kind) const {
    int n = 0;
    for (int k : inbox_) {
      if (k == kind) ++n;
    }
    return n;
  }

  template <typename T>
  std::vector<T> payloads(int kind) {
    std::vector<T> out;
    for (auto& payload : payloads_[kind]) {
      out.push_back(std::any_cast<T>(payload));
    }
    return out;
  }

  sim::Environment env_;
  net::SimNetwork net_;
  hw::NodeModel node_;
  container::ImageRegistry registry_;
  storage::CheckpointStore store_;
  std::unique_ptr<ProviderAgent> agent_;
  std::vector<int> inbox_;
  std::map<int, std::vector<std::any>> payloads_;
};

TEST_F(AgentTest, JoinRegistersAndHeartbeats) {
  join_and_settle();
  EXPECT_EQ(count(kRegisterRequest), 1);
  env_.run_until(env_.now() + 10.0);
  EXPECT_GE(count(kHeartbeat), 4);
  const auto beats = payloads<Heartbeat>(kHeartbeat);
  ASSERT_FALSE(beats.empty());
  EXPECT_EQ(beats.back().auth_token, "token");
  EXPECT_EQ(beats.back().free_gpus, 1);
  EXPECT_TRUE(beats.back().accepting);
}

TEST_F(AgentTest, DispatchRunsToCompletion) {
  join_and_settle();
  dispatch_training("job-1", /*hours=*/0.5);
  env_.run_until(env_.now() + 5.0);
  EXPECT_EQ(agent_->running_jobs(), 1u);
  EXPECT_EQ(node_.free_gpu_count(), 0);
  const auto results = payloads<DispatchResult>(kDispatchResult);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].accepted);
  ASSERT_EQ(results[0].gpu_indices.size(), 1u);

  // 0.5 reference-hours on a 3090 (speed ~0.99 with container overhead).
  env_.run_until(env_.now() + util::hours(0.6));
  EXPECT_EQ(count(kJobCompleted), 1);
  EXPECT_EQ(agent_->running_jobs(), 0u);
  EXPECT_EQ(node_.free_gpu_count(), 1);
}

TEST_F(AgentTest, DispatchRejectedWhenPaused) {
  join_and_settle();
  agent_->set_paused(true);
  dispatch_training("job-1");
  env_.run_until(env_.now() + 2.0);
  const auto results = payloads<DispatchResult>(kDispatchResult);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].accepted);
  EXPECT_EQ(agent_->running_jobs(), 0u);
}

TEST_F(AgentTest, DispatchRejectedWhenNoGpuFits) {
  join_and_settle();
  workload::JobSpec job = workload::make_training_job(
      "big", workload::transformer_large(), 4.0, "nlp", env_.now());
  DispatchRequest request;
  request.job = std::move(job);  // needs 40 GB VRAM; 3090 has 24
  net::Message msg;
  msg.from = "coordinator";
  msg.to = agent_->machine_id();
  msg.kind = kDispatch;
  msg.payload = std::move(request);
  ASSERT_TRUE(net_.send(std::move(msg)).is_ok());
  env_.run_until(env_.now() + 2.0);
  const auto results = payloads<DispatchResult>(kDispatchResult);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].accepted);
}

TEST_F(AgentTest, PeriodicCheckpointsFlow) {
  join_and_settle();
  dispatch_training("job-1", /*hours=*/2.0);
  // Default interval 600 s: expect ~3 checkpoints in ~35 minutes.
  env_.run_until(env_.now() + util::minutes(35));
  EXPECT_GE(count(kCheckpointNotice), 3);
  const auto notices = payloads<CheckpointNotice>(kCheckpointNotice);
  ASSERT_GE(notices.size(), 2u);
  EXPECT_GT(notices[1].progress, notices[0].progress);
  EXPECT_EQ(notices[0].storage_node, "nas");
  // Checkpoint bytes actually moved across the network.
  EXPECT_GT(net_.bytes_sent(net::TrafficClass::kCheckpoint), 0u);
  // Store holds the chain.
  EXPECT_TRUE(store_.latest("job-1").ok());
}

TEST_F(AgentTest, KillSwitchTerminatesEverythingInstantly) {
  join_and_settle();
  dispatch_training("job-1");
  env_.run_until(env_.now() + 5.0);
  ASSERT_EQ(agent_->running_jobs(), 1u);
  const auto killed = agent_->kill_switch();
  EXPECT_EQ(killed, std::vector<std::string>{"job-1"});
  EXPECT_EQ(agent_->running_jobs(), 0u);
  EXPECT_EQ(node_.free_gpu_count(), 1);  // GPUs released immediately
  env_.run_until(env_.now() + 1.0);
  EXPECT_EQ(count(kKillSwitchNotice), 1);
}

TEST_F(AgentTest, ScheduledDepartureCheckpointsWithinGrace) {
  join_and_settle();
  dispatch_training("job-1", /*hours=*/2.0);
  env_.run_until(env_.now() + util::minutes(5));
  agent_->depart_scheduled();
  EXPECT_EQ(agent_->state(), AgentState::kDeparted);
  env_.run_until(env_.now() + 1.0);
  const auto notices = payloads<DepartureNotice>(kDepartureNotice);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_EQ(notices[0].kind, DepartureKind::kScheduled);
  ASSERT_EQ(notices[0].jobs.size(), 1u);
  EXPECT_TRUE(notices[0].jobs[0].fresh_checkpoint);
  EXPECT_GT(notices[0].jobs[0].checkpointed_progress, 0.0);
  // Further heartbeats stop.
  const int beats = count(kHeartbeat);
  env_.run_until(env_.now() + 10.0);
  EXPECT_EQ(count(kHeartbeat), beats);
}

TEST_F(AgentTest, EmergencyDepartureSendsNothing) {
  join_and_settle();
  dispatch_training("job-1");
  env_.run_until(env_.now() + 5.0);
  const auto control_before = inbox_.size();
  agent_->depart_emergency();
  env_.run_until(env_.now() + 10.0);
  // Only heartbeats could have been in flight; no departure notice.
  EXPECT_EQ(count(kDepartureNotice), 0);
  EXPECT_EQ(count(kKillSwitchNotice), 0);
  EXPECT_LE(inbox_.size(), control_before + 1);  // at most one stale beat
  EXPECT_EQ(agent_->running_jobs(), 0u);
}

TEST_F(AgentTest, RejoinAfterDeparture) {
  join_and_settle();
  agent_->depart_emergency();
  env_.run_until(env_.now() + 5.0);
  agent_->rejoin();
  env_.run_until(env_.now() + 2.0);
  EXPECT_EQ(agent_->state(), AgentState::kActive);
  EXPECT_EQ(count(kRegisterRequest), 2);
  EXPECT_EQ(count(kReturnNotice), 1);
}

TEST_F(AgentTest, KillJobCommandWithCheckpoint) {
  join_and_settle();
  dispatch_training("job-1", /*hours=*/2.0);
  env_.run_until(env_.now() + util::minutes(5));
  net::Message msg;
  msg.from = "coordinator";
  msg.to = agent_->machine_id();
  msg.kind = kKillJob;
  msg.payload = KillJobCommand{"job-1", /*allow_checkpoint=*/true};
  ASSERT_TRUE(net_.send(std::move(msg)).is_ok());
  env_.run_until(env_.now() + 2.0);
  const auto acks = payloads<JobKilledAck>(kJobKilledAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].fresh_checkpoint);
  EXPECT_GT(acks[0].checkpointed_progress, 0.0);
  EXPECT_EQ(agent_->running_jobs(), 0u);
}

TEST_F(AgentTest, RestoreDelaysComputeStart) {
  join_and_settle();
  // 12.5 GB restore at 1 Gbps -> ~100 s before compute starts.
  dispatch_training("job-1", /*hours=*/2.0, /*start_progress=*/0.5,
                    /*restore_bytes=*/12'500'000'000ULL);
  env_.run_until(env_.now() + 10.0);
  EXPECT_EQ(count(kJobStarted), 0);  // still transferring
  env_.run_until(env_.now() + 150.0);
  EXPECT_EQ(count(kJobStarted), 1);
  const auto started = payloads<JobStarted>(kJobStarted);
  EXPECT_DOUBLE_EQ(started[0].start_progress, 0.5);
  EXPECT_GT(net_.bytes_sent(net::TrafficClass::kMigration), 0u);
}

TEST_F(AgentTest, ReclaimEvictsGuestsOnly) {
  join_and_settle();
  // Guest job from another group.
  dispatch_training("guest-job");
  env_.run_until(env_.now() + util::minutes(2));
  ASSERT_EQ(agent_->running_jobs(), 1u);
  const int freed = agent_->reclaim_gpus(1);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(agent_->running_jobs(), 0u);
  env_.run_until(env_.now() + 1.0);
  const auto notices = payloads<KillSwitchNotice>(kKillSwitchNotice);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_EQ(notices[0].killed_jobs, std::vector<std::string>{"guest-job"});
  // Guest got a parting checkpoint.
  EXPECT_TRUE(store_.latest("guest-job").ok());
}

TEST_F(AgentTest, InteractiveSessionHasFixedWallClock) {
  join_and_settle();
  workload::JobSpec session = workload::make_interactive_session(
      "sess-1", /*hours=*/1.0, "theory", env_.now());
  DispatchRequest request;
  request.job = std::move(session);
  net::Message msg;
  msg.from = "coordinator";
  msg.to = agent_->machine_id();
  msg.kind = kDispatch;
  msg.payload = std::move(request);
  ASSERT_TRUE(net_.send(std::move(msg)).is_ok());
  env_.run_until(env_.now() + util::minutes(50));
  EXPECT_EQ(count(kJobCompleted), 0);
  env_.run_until(env_.now() + util::minutes(15));
  EXPECT_EQ(count(kJobCompleted), 1);
  // Sessions produce no checkpoints.
  EXPECT_EQ(count(kCheckpointNotice), 0);
}

}  // namespace
}  // namespace gpunion::agent
