#include "container/registry.h"

#include <gtest/gtest.h>

namespace gpunion::container {
namespace {

Image test_image() {
  return make_image("pytorch", "2.3", "nvidia/cuda:12.1-runtime", 6ULL << 30,
                    "layers");
}

TEST(RegistryTest, PushAndResolve) {
  ImageRegistry registry;
  ASSERT_TRUE(registry.push(test_image()).is_ok());
  auto resolved = registry.resolve("pytorch:2.3");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->digest, test_image().digest);
}

TEST(RegistryTest, ResolveUnknownFails) {
  ImageRegistry registry;
  EXPECT_EQ(registry.resolve("ghost:latest").status().code(),
            util::StatusCode::kNotFound);
}

TEST(RegistryTest, RepushSameDigestIdempotent) {
  ImageRegistry registry;
  ASSERT_TRUE(registry.push(test_image()).is_ok());
  EXPECT_TRUE(registry.push(test_image()).is_ok());
  EXPECT_EQ(registry.image_count(), 1u);
}

TEST(RegistryTest, TagImmutability) {
  ImageRegistry registry;
  ASSERT_TRUE(registry.push(test_image()).is_ok());
  Image retagged = make_image("pytorch", "2.3", "other-base", 1, "different");
  EXPECT_EQ(registry.push(retagged).code(),
            util::StatusCode::kAlreadyExists);
}

TEST(RegistryTest, VerifyRequiresAllowListedBase) {
  ImageRegistry registry;
  ASSERT_TRUE(registry.push(test_image()).is_ok());
  // Base not allow-listed yet.
  EXPECT_EQ(registry.verify_for_deployment(test_image()).code(),
            util::StatusCode::kPermissionDenied);
  registry.allow_base("nvidia/cuda:12.1-runtime");
  EXPECT_TRUE(registry.verify_for_deployment(test_image()).is_ok());
}

TEST(RegistryTest, VerifyDetectsDigestTampering) {
  ImageRegistry registry;
  registry.allow_base("nvidia/cuda:12.1-runtime");
  ASSERT_TRUE(registry.push(test_image()).is_ok());
  Image tampered = test_image();
  tampered.digest = "sha256:deadbeef";
  const auto status = registry.verify_for_deployment(tampered);
  EXPECT_EQ(status.code(), util::StatusCode::kPermissionDenied);
  EXPECT_NE(status.message().find("digest mismatch"), std::string::npos);
}

TEST(RegistryTest, VerifyUnknownImage) {
  ImageRegistry registry;
  registry.allow_base("nvidia/cuda:12.1-runtime");
  EXPECT_EQ(registry.verify_for_deployment(test_image()).code(),
            util::StatusCode::kNotFound);
}

TEST(RegistryTest, PushRequiresNameAndDigest) {
  ImageRegistry registry;
  Image bad;
  EXPECT_EQ(registry.push(bad).code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gpunion::container
