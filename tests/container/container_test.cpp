#include "container/container.h"

#include <gtest/gtest.h>

namespace gpunion::container {
namespace {

ContainerConfig test_config() {
  ContainerConfig config;
  config.image = make_image("pytorch", "2.3", "base", 1);
  config.limits.gpu_indices = {0, 2};
  return config;
}

TEST(ContainerTest, LifecycleHappyPath) {
  Container c("ctr-1", test_config(), 0.0);
  EXPECT_EQ(c.state(), ContainerState::kCreated);
  ASSERT_TRUE(c.start(1.0).is_ok());
  EXPECT_EQ(c.state(), ContainerState::kRunning);
  ASSERT_TRUE(c.begin_checkpoint(2.0).is_ok());
  EXPECT_EQ(c.state(), ContainerState::kCheckpointing);
  ASSERT_TRUE(c.end_checkpoint(3.0).is_ok());
  EXPECT_EQ(c.state(), ContainerState::kRunning);
  ASSERT_TRUE(c.exit(4.0).is_ok());
  EXPECT_EQ(c.state(), ContainerState::kExited);
  EXPECT_FALSE(c.live());
  EXPECT_DOUBLE_EQ(c.finished_at(), 4.0);
}

TEST(ContainerTest, PauseResume) {
  Container c("ctr-1", test_config(), 0.0);
  ASSERT_TRUE(c.start(1.0).is_ok());
  ASSERT_TRUE(c.pause(2.0).is_ok());
  EXPECT_EQ(c.state(), ContainerState::kPaused);
  ASSERT_TRUE(c.resume(3.0).is_ok());
  EXPECT_EQ(c.state(), ContainerState::kRunning);
}

TEST(ContainerTest, InvalidTransitionsRejected) {
  Container c("ctr-1", test_config(), 0.0);
  EXPECT_FALSE(c.pause(1.0).is_ok());            // not running yet
  EXPECT_FALSE(c.resume(1.0).is_ok());           // not paused
  EXPECT_FALSE(c.begin_checkpoint(1.0).is_ok()); // not running
  ASSERT_TRUE(c.start(1.0).is_ok());
  EXPECT_FALSE(c.start(2.0).is_ok());            // double start
  EXPECT_FALSE(c.end_checkpoint(2.0).is_ok());   // no checkpoint open
}

TEST(ContainerTest, KillFromAnyLiveState) {
  for (int scenario = 0; scenario < 3; ++scenario) {
    Container c("ctr", test_config(), 0.0);
    if (scenario >= 1) {
      ASSERT_TRUE(c.start(1.0).is_ok());
    }
    if (scenario == 2) {
      ASSERT_TRUE(c.begin_checkpoint(2.0).is_ok());
    }
    EXPECT_TRUE(c.kill(5.0).is_ok()) << "scenario " << scenario;
    EXPECT_EQ(c.state(), ContainerState::kKilled);
  }
}

TEST(ContainerTest, KillAfterExitRejected) {
  Container c("ctr", test_config(), 0.0);
  ASSERT_TRUE(c.start(1.0).is_ok());
  ASSERT_TRUE(c.exit(2.0).is_ok());
  EXPECT_EQ(c.kill(3.0).code(), util::StatusCode::kFailedPrecondition);
}

TEST(ContainerTest, VisibleDevicesMask) {
  Container c("ctr", test_config(), 0.0);
  EXPECT_EQ(c.visible_devices(), "0,2");
}

TEST(ContainerTest, EventsRecorded) {
  Container c("ctr", test_config(), 0.0);
  ASSERT_TRUE(c.start(1.0).is_ok());
  ASSERT_TRUE(c.kill(2.0).is_ok());
  ASSERT_EQ(c.events().size(), 3u);
  EXPECT_EQ(c.events()[0].what, "created");
  EXPECT_EQ(c.events()[1].what, "started");
  EXPECT_EQ(c.events()[2].what, "killed");
  EXPECT_DOUBLE_EQ(c.events()[2].at, 2.0);
}

TEST(ContainerTest, StateNames) {
  EXPECT_EQ(container_state_name(ContainerState::kRunning), "running");
  EXPECT_EQ(container_state_name(ContainerState::kKilled), "killed");
}

}  // namespace
}  // namespace gpunion::container
