#include "container/image.h"

#include <gtest/gtest.h>

namespace gpunion::container {
namespace {

TEST(ImageTest, DigestIsSha256Prefixed) {
  const Image image = make_image("pytorch", "2.3", "nvidia/cuda", 1000);
  EXPECT_EQ(image.digest.substr(0, 7), "sha256:");
  EXPECT_EQ(image.digest.size(), 7u + 64u);
}

TEST(ImageTest, DigestDeterministic) {
  const Image a = make_image("pytorch", "2.3", "nvidia/cuda", 1000, "m");
  const Image b = make_image("pytorch", "2.3", "nvidia/cuda", 1000, "m");
  EXPECT_EQ(a.digest, b.digest);
}

TEST(ImageTest, DigestChangesWithContent) {
  const Image a = make_image("pytorch", "2.3", "nvidia/cuda", 1000, "m1");
  const Image b = make_image("pytorch", "2.3", "nvidia/cuda", 1000, "m2");
  const Image c = make_image("pytorch", "2.4", "nvidia/cuda", 1000, "m1");
  const Image d = make_image("pytorch", "2.3", "nvidia/cuda", 1001, "m1");
  EXPECT_NE(a.digest, b.digest);
  EXPECT_NE(a.digest, c.digest);
  EXPECT_NE(a.digest, d.digest);
}

TEST(ImageTest, ReferenceFormat) {
  const Image image = make_image("pytorch", "2.3-cuda12.1", "base", 1);
  EXPECT_EQ(image.reference(), "pytorch:2.3-cuda12.1");
}

TEST(ImageTest, RecomputeMatchesStored) {
  const Image image = make_image("a", "b", "c", 42, "manifest");
  EXPECT_EQ(compute_image_digest(image, "manifest"), image.digest);
  EXPECT_NE(compute_image_digest(image, "tampered"), image.digest);
}

}  // namespace
}  // namespace gpunion::container
