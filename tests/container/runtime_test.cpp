#include "container/runtime.h"

#include <gtest/gtest.h>

namespace gpunion::container {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : node_(hw::server_4xa6000("srv")), runtime_(node_, registry_) {
    registry_.allow_base("base");
    image_ = make_image("pytorch", "2.3", "base", 1000);
    EXPECT_TRUE(registry_.push(image_).is_ok());
  }

  ContainerConfig config(std::vector<int> gpus) {
    ContainerConfig cfg;
    cfg.image = image_;
    cfg.limits.gpu_indices = std::move(gpus);
    cfg.limits.gpu_memory_gb = 16.0;
    cfg.limits.host_memory_gb = 8.0;
    cfg.limits.cpu_cores = 4.0;
    return cfg;
  }

  hw::NodeModel node_;
  ImageRegistry registry_;
  ContainerRuntime runtime_;
  Image image_;
};

TEST_F(RuntimeTest, CreateBindsGpus) {
  auto id = runtime_.create(config({0, 1}), "job-1", 0.9, 0.0);
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(node_.free_gpu_count(), 2);
  EXPECT_EQ(runtime_.live_count(), 1u);
  const Container* c = runtime_.find(*id);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->state(), ContainerState::kCreated);
}

TEST_F(RuntimeTest, RejectsUnverifiedImage) {
  auto cfg = config({0});
  cfg.image = make_image("rogue", "1.0", "base", 1);  // never pushed
  auto id = runtime_.create(cfg, "job", 0.9, 0.0);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(node_.free_gpu_count(), 4);  // nothing leaked
}

TEST_F(RuntimeTest, RejectsUnconfinedSeccomp) {
  auto cfg = config({0});
  cfg.seccomp = SeccompProfile::kUnconfined;
  auto id = runtime_.create(cfg, "job", 0.9, 0.0);
  EXPECT_EQ(id.status().code(), util::StatusCode::kPermissionDenied);
}

TEST_F(RuntimeTest, RejectsBusyGpu) {
  ASSERT_TRUE(runtime_.create(config({0}), "job-1", 0.9, 0.0).ok());
  auto second = runtime_.create(config({0}), "job-2", 0.9, 0.0);
  EXPECT_FALSE(second.ok());
}

TEST_F(RuntimeTest, RejectsHostMemoryExhaustion) {
  // Node has 384 GB; each container takes 8 -> 48 fit, but cpu runs out
  // first (48 cores / 4 = 12).  Use bigger budgets to hit memory.
  auto cfg = config({0});
  cfg.limits.host_memory_gb = 300.0;
  ASSERT_TRUE(runtime_.create(cfg, "job-1", 0.9, 0.0).ok());
  auto cfg2 = config({1});
  cfg2.limits.host_memory_gb = 100.0;
  auto second = runtime_.create(cfg2, "job-2", 0.9, 0.0);
  EXPECT_EQ(second.status().code(), util::StatusCode::kResourceExhausted);
}

TEST_F(RuntimeTest, ExitReleasesResources) {
  auto id = runtime_.create(config({0, 1}), "job-1", 0.9, 0.0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(runtime_.start(*id, 1.0).is_ok());
  ASSERT_TRUE(runtime_.exit(*id, 2.0).is_ok());
  EXPECT_EQ(node_.free_gpu_count(), 4);
  EXPECT_EQ(runtime_.live_count(), 0u);
  // Resources can be re-used.
  EXPECT_TRUE(runtime_.create(config({0, 1}), "job-2", 0.9, 3.0).ok());
}

TEST_F(RuntimeTest, KillAllIsKillSwitch) {
  auto id1 = runtime_.create(config({0}), "job-1", 0.9, 0.0);
  auto id2 = runtime_.create(config({1}), "job-2", 0.9, 0.0);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(runtime_.start(*id1, 1.0).is_ok());
  // id2 intentionally left in kCreated: kill-switch must reap it too.
  auto killed = runtime_.kill_all(5.0);
  EXPECT_EQ(killed.size(), 2u);
  EXPECT_EQ(node_.free_gpu_count(), 4);
  EXPECT_EQ(runtime_.live_count(), 0u);
  EXPECT_EQ(runtime_.find(*id1)->state(), ContainerState::kKilled);
}

TEST_F(RuntimeTest, CheckpointTransitions) {
  auto id = runtime_.create(config({0}), "job", 0.9, 0.0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(runtime_.start(*id, 1.0).is_ok());
  ASSERT_TRUE(runtime_.begin_checkpoint(*id, 2.0).is_ok());
  EXPECT_FALSE(runtime_.begin_checkpoint(*id, 2.5).is_ok());
  ASSERT_TRUE(runtime_.end_checkpoint(*id, 3.0).is_ok());
}

TEST_F(RuntimeTest, ImageCacheTracking) {
  EXPECT_FALSE(runtime_.image_cached("pytorch:2.3"));
  runtime_.mark_image_cached("pytorch:2.3");
  EXPECT_TRUE(runtime_.image_cached("pytorch:2.3"));
}

TEST_F(RuntimeTest, UnknownContainerOperations) {
  EXPECT_EQ(runtime_.start("ghost", 0.0).code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(runtime_.kill("ghost", 0.0).code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace gpunion::container
