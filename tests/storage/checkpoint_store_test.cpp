#include "storage/checkpoint_store.h"

#include <gtest/gtest.h>

namespace gpunion::storage {
namespace {

constexpr std::uint64_t kGiB = 1ULL << 30;

TEST(CheckpointStoreTest, FirstCheckpointIsFull) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", 100 * kGiB).is_ok());
  auto c = store.write("job", 2 * kGiB, 0.3, 0.1, 10.0);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->kind, CheckpointKind::kFull);
  EXPECT_EQ(c->stored_bytes, 2 * kGiB);
  EXPECT_EQ(c->storage_node, "nas");
  EXPECT_TRUE(checkpoint_intact(*c));
}

TEST(CheckpointStoreTest, IncrementalDeltasAreSmall) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", 100 * kGiB).is_ok());
  ASSERT_TRUE(store.write("job", 2 * kGiB, 0.25, 0.1, 10.0).ok());
  auto c = store.write("job", 2 * kGiB, 0.25, 0.2, 20.0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->kind, CheckpointKind::kIncremental);
  // 25% dirty of 2 GiB + 64 KiB metadata.
  EXPECT_EQ(c->stored_bytes, kGiB / 2 + (64 << 10));
}

TEST(CheckpointStoreTest, FullSnapshotCadence) {
  CheckpointStoreConfig config;
  config.full_every = 4;
  config.keep_per_job = 100;
  CheckpointStore store(config);
  ASSERT_TRUE(store.add_node("nas", 1000 * kGiB).is_ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(store.write("job", kGiB, 0.3, i * 0.1, i).ok());
  }
  const auto& chain = store.chain("job");
  ASSERT_EQ(chain.size(), 9u);
  EXPECT_EQ(chain[0].kind, CheckpointKind::kFull);
  EXPECT_EQ(chain[4].kind, CheckpointKind::kFull);
  EXPECT_EQ(chain[8].kind, CheckpointKind::kFull);
  EXPECT_EQ(chain[1].kind, CheckpointKind::kIncremental);
}

TEST(CheckpointStoreTest, LatestReturnsNewest) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", 100 * kGiB).is_ok());
  ASSERT_TRUE(store.write("job", kGiB, 0.3, 0.1, 1.0).ok());
  ASSERT_TRUE(store.write("job", kGiB, 0.3, 0.5, 2.0).ok());
  auto latest = store.latest("job");
  ASSERT_TRUE(latest.ok());
  EXPECT_DOUBLE_EQ(latest->progress, 0.5);
  EXPECT_EQ(latest->seq, 1u);
}

TEST(CheckpointStoreTest, LatestUnknownJob) {
  CheckpointStore store;
  EXPECT_EQ(store.latest("ghost").status().code(),
            util::StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, RestoreBytesSpansFullPlusDeltas) {
  CheckpointStoreConfig config;
  config.full_every = 8;
  CheckpointStore store(config);
  ASSERT_TRUE(store.add_node("nas", 1000 * kGiB).is_ok());
  ASSERT_TRUE(store.write("job", kGiB, 0.5, 0.1, 1.0).ok());  // full
  ASSERT_TRUE(store.write("job", kGiB, 0.5, 0.2, 2.0).ok());  // delta
  ASSERT_TRUE(store.write("job", kGiB, 0.5, 0.3, 3.0).ok());  // delta
  auto bytes = store.restore_bytes("job");
  ASSERT_TRUE(bytes.ok());
  const std::uint64_t delta = kGiB / 2 + (64 << 10);
  EXPECT_EQ(*bytes, kGiB + 2 * delta);
}

TEST(CheckpointStoreTest, PreferredNodeHonoured) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas-a", 100 * kGiB).is_ok());
  ASSERT_TRUE(store.add_node("nas-b", 100 * kGiB).is_ok());
  store.set_preference("job", {"nas-b"});
  auto c = store.write("job", kGiB, 0.3, 0.1, 1.0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->storage_node, "nas-b");
}

TEST(CheckpointStoreTest, PreferenceFallsBackWhenFull) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("tiny", 1 << 20).is_ok());  // 1 MiB: too small
  ASSERT_TRUE(store.add_node("big", 100 * kGiB).is_ok());
  store.set_preference("job", {"tiny"});
  auto c = store.write("job", kGiB, 0.3, 0.1, 1.0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->storage_node, "big");
}

TEST(CheckpointStoreTest, CapacityExhaustion) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", kGiB).is_ok());
  ASSERT_TRUE(store.write("job-a", kGiB, 0.3, 0.1, 1.0).ok());
  auto c = store.write("job-b", kGiB, 0.3, 0.1, 2.0);
  EXPECT_EQ(c.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(CheckpointStoreTest, ForgetFreesSpace) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", kGiB).is_ok());
  ASSERT_TRUE(store.write("job-a", kGiB, 0.3, 0.1, 1.0).ok());
  store.forget("job-a");
  EXPECT_EQ(store.total_stored_bytes(), 0u);
  EXPECT_TRUE(store.write("job-b", kGiB, 0.3, 0.1, 2.0).ok());
}

TEST(CheckpointStoreTest, GarbageCollectionKeepsRestorableChain) {
  CheckpointStoreConfig config;
  config.full_every = 4;
  config.keep_per_job = 5;
  CheckpointStore store(config);
  ASSERT_TRUE(store.add_node("nas", 1000 * kGiB).is_ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(store.write("job", kGiB, 0.3, i * 0.05, i).ok());
  }
  const auto& chain = store.chain("job");
  EXPECT_LE(chain.size(), 8u);  // trimmed
  // The chain must still start at a full snapshot for restore.
  EXPECT_EQ(chain.front().kind, CheckpointKind::kFull);
  EXPECT_TRUE(store.restore_bytes("job").ok());
  // Latest seq preserved.
  auto latest = store.latest("job");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->seq, 11u);
}

TEST(CheckpointStoreTest, DuplicateNodeRejected) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", kGiB).is_ok());
  EXPECT_EQ(store.add_node("nas", kGiB).code(),
            util::StatusCode::kAlreadyExists);
}

TEST(CheckpointStoreTest, ZeroStateRejected) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("nas", kGiB).is_ok());
  EXPECT_EQ(store.write("job", 0, 0.3, 0.1, 1.0).status().code(),
            util::StatusCode::kInvalidArgument);
}

// Regression for the utilization-ordered placement index: across a long
// mixed write/forget workload the indexed pick must match the legacy
// linear least-utilized scan decision for decision, and the index must
// track every reserve/release (collect and forget included).
TEST(CheckpointStoreTest, UtilizationIndexMatchesLinearScanOracle) {
  CheckpointStoreConfig config;
  config.full_every = 2;
  config.keep_per_job = 3;  // forces garbage collection (releases)
  CheckpointStore store(config);
  // Mixed capacities so used-fraction order diverges from free-bytes order.
  ASSERT_TRUE(store.add_node("small-a", 4 * kGiB).is_ok());
  ASSERT_TRUE(store.add_node("small-b", 4 * kGiB).is_ok());
  ASSERT_TRUE(store.add_node("big", 64 * kGiB).is_ok());
  ASSERT_TRUE(store.add_node("mid", 16 * kGiB).is_ok());

  auto oracle = [&store](std::uint64_t bytes) -> std::string {
    // The legacy scan: least used-fraction with space, id tiebreak.
    std::string best;
    double best_frac = 2.0;
    for (const auto& id : store.node_ids()) {
      const StorageNode* node = store.node(id);
      if (node->free_bytes() < bytes) continue;
      const double frac = static_cast<double>(node->used_bytes()) /
                          static_cast<double>(node->capacity_bytes());
      if (frac < best_frac) {
        best_frac = frac;
        best = id;
      }
    }
    return best;
  };

  for (int round = 0; round < 120; ++round) {
    const std::string job = "job-" + std::to_string(round % 7);
    const std::uint64_t bytes = (1 + round % 3) * (kGiB / 2);
    const std::string expected = oracle(bytes);
    auto written = store.write(job, bytes, 1.0, 0.5, round);
    if (expected.empty()) {
      EXPECT_FALSE(written.ok()) << "round " << round;
      continue;
    }
    ASSERT_TRUE(written.ok()) << "round " << round << ": "
                              << written.status();
    EXPECT_EQ(written->storage_node, expected) << "round " << round;
    if (round % 11 == 10) {
      store.forget("job-" + std::to_string(round % 7));
    }
  }
}

TEST(CheckpointStoreTest, IndexFollowsForgetReleases) {
  CheckpointStore store;
  ASSERT_TRUE(store.add_node("a", 10 * kGiB).is_ok());
  ASSERT_TRUE(store.add_node("b", 10 * kGiB).is_ok());
  // Fill `a` so `b` becomes least utilized.
  ASSERT_EQ(store.write("job-a", 4 * kGiB, 1.0, 0.1, 1.0)->storage_node,
            "a");
  ASSERT_EQ(store.write("x", kGiB, 1.0, 0.1, 2.0)->storage_node, "b");
  ASSERT_EQ(store.write("y", kGiB, 1.0, 0.1, 3.0)->storage_node, "b");
  ASSERT_EQ(store.write("z", kGiB, 1.0, 0.1, 4.0)->storage_node, "b");
  // Freeing `a` must re-file it at the front of the order.
  store.forget("job-a");
  EXPECT_EQ(store.write("w", kGiB, 1.0, 0.1, 5.0)->storage_node, "a");
}

}  // namespace
}  // namespace gpunion::storage
