// Parameterized sweeps over checkpoint-store configurations: the restore
// invariants must hold for every full-snapshot cadence and GC budget.
#include <gtest/gtest.h>

#include "storage/checkpoint_store.h"

namespace gpunion::storage {
namespace {

constexpr std::uint64_t kGiB = 1ULL << 30;

struct StoreParams {
  int full_every;
  int keep_per_job;
  int writes;
};

class CheckpointStoreParamTest
    : public ::testing::TestWithParam<StoreParams> {};

TEST_P(CheckpointStoreParamTest, ChainAlwaysRestorable) {
  const auto& params = GetParam();
  CheckpointStoreConfig config;
  config.full_every = params.full_every;
  config.keep_per_job = params.keep_per_job;
  CheckpointStore store(config);
  ASSERT_TRUE(store.add_node("nas", 4096 * kGiB).is_ok());

  for (int i = 0; i < params.writes; ++i) {
    const double progress = static_cast<double>(i + 1) / params.writes;
    auto c = store.write("job", kGiB, 0.3, progress, i * 60.0);
    ASSERT_TRUE(c.ok()) << "write " << i << ": " << c.status();

    // Invariant 1: the chain always starts with a full snapshot.
    const auto& chain = store.chain("job");
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front().kind, CheckpointKind::kFull);

    // Invariant 2: restore bytes are always computable and bounded by the
    // total stored bytes for the job.
    auto bytes = store.restore_bytes("job");
    ASSERT_TRUE(bytes.ok());
    std::uint64_t chain_total = 0;
    for (const auto& checkpoint : chain) {
      chain_total += checkpoint.stored_bytes;
    }
    EXPECT_LE(*bytes, chain_total);
    EXPECT_GE(*bytes, kGiB);  // at least the full snapshot

    // Invariant 3: the latest checkpoint is the newest and intact.
    auto latest = store.latest("job");
    ASSERT_TRUE(latest.ok());
    EXPECT_DOUBLE_EQ(latest->progress, progress);
    EXPECT_TRUE(checkpoint_intact(*latest));

    // Invariant 4: GC respects the per-job budget (modulo keeping a
    // restorable prefix back to the previous full snapshot).
    EXPECT_LE(static_cast<int>(chain.size()),
              params.keep_per_job + params.full_every);

    // Invariant 5: sequence numbers strictly increase along the chain.
    for (std::size_t k = 1; k < chain.size(); ++k) {
      EXPECT_EQ(chain[k].seq, chain[k - 1].seq + 1);
    }
  }

  // Accounting: forgetting the job releases every byte.
  store.forget("job");
  EXPECT_EQ(store.total_stored_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CadenceAndBudgetSweep, CheckpointStoreParamTest,
    ::testing::Values(StoreParams{1, 1, 20},    // always-full, keep one
                      StoreParams{1, 8, 30},    // always-full, history
                      StoreParams{4, 4, 25},    // tight budget
                      StoreParams{8, 16, 40},   // the default shape
                      StoreParams{8, 2, 40},    // budget < cadence
                      StoreParams{16, 8, 50}),  // sparse fulls
    [](const ::testing::TestParamInfo<StoreParams>& info) {
      return "full" + std::to_string(info.param.full_every) + "_keep" +
             std::to_string(info.param.keep_per_job) + "_n" +
             std::to_string(info.param.writes);
    });

}  // namespace
}  // namespace gpunion::storage
