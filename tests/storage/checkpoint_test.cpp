#include "storage/checkpoint.h"

#include <gtest/gtest.h>

namespace gpunion::storage {
namespace {

Checkpoint sample() {
  Checkpoint c;
  c.job_id = "job-1";
  c.seq = 3;
  c.kind = CheckpointKind::kIncremental;
  c.state_bytes = 1 << 30;
  c.stored_bytes = 100 << 20;
  c.progress = 0.42;
  c.created_at = 1234.5;
  c.storage_node = "nas-campus";
  return c;
}

TEST(CheckpointTest, SealProducesIntactRecord) {
  const Checkpoint c = seal_checkpoint(sample());
  EXPECT_FALSE(c.integrity_tag.empty());
  EXPECT_TRUE(checkpoint_intact(c));
}

TEST(CheckpointTest, UnsealedIsNotIntact) {
  EXPECT_FALSE(checkpoint_intact(sample()));
}

TEST(CheckpointTest, TamperingDetected) {
  Checkpoint c = seal_checkpoint(sample());
  c.progress = 0.99;
  EXPECT_FALSE(checkpoint_intact(c));

  Checkpoint c2 = seal_checkpoint(sample());
  c2.stored_bytes += 1;
  EXPECT_FALSE(checkpoint_intact(c2));

  Checkpoint c3 = seal_checkpoint(sample());
  c3.storage_node = "evil-node";
  EXPECT_FALSE(checkpoint_intact(c3));
}

TEST(CheckpointTest, TagCoversKind) {
  Checkpoint full = sample();
  full.kind = CheckpointKind::kFull;
  Checkpoint incremental = sample();
  EXPECT_NE(checkpoint_integrity_tag(full),
            checkpoint_integrity_tag(incremental));
}

}  // namespace
}  // namespace gpunion::storage
