#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gpunion::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsIndependentOfParentDrawOrder) {
  Rng parent1(7);
  Rng parent2(7);
  (void)parent2.next_u64();  // advance one parent
  Rng child1 = parent1.fork("stream-a");
  Rng child2 = parent2.fork("stream-a");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(RngTest, ForkLabelsAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, ExponentialMeanApproximatesInverseRate) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
  // Large-lambda branch.
  sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(29);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

}  // namespace
}  // namespace gpunion::util
