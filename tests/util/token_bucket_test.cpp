#include "util/token_bucket.h"

#include <gtest/gtest.h>

namespace gpunion::util {
namespace {

TEST(TokenBucketTest, StartsFull) {
  TokenBucket bucket(1.0, 5.0);
  EXPECT_DOUBLE_EQ(bucket.available(0), 5.0);
  EXPECT_TRUE(bucket.try_consume(0, 5.0));
  EXPECT_FALSE(bucket.try_consume(0, 0.5));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(2.0, 10.0);
  ASSERT_TRUE(bucket.try_consume(0, 10.0));
  EXPECT_FALSE(bucket.try_consume(1.0, 3.0));  // only 2 tokens back
  EXPECT_TRUE(bucket.try_consume(1.0, 2.0));
  EXPECT_TRUE(bucket.try_consume(6.0, 10.0));  // capped at burst
}

TEST(TokenBucketTest, NeverExceedsBurst) {
  TokenBucket bucket(100.0, 3.0);
  EXPECT_DOUBLE_EQ(bucket.available(1000.0), 3.0);
}

TEST(TokenBucketTest, NextAvailableComputesWait) {
  TokenBucket bucket(1.0, 4.0);
  ASSERT_TRUE(bucket.try_consume(0, 4.0));
  EXPECT_DOUBLE_EQ(bucket.next_available(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(bucket.next_available(1.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(bucket.next_available(10.0, 2.0), 10.0);
}

TEST(TokenBucketTest, OverBurstRequestNeverSatisfiable) {
  TokenBucket bucket(1.0, 4.0);
  EXPECT_EQ(bucket.next_available(0, 5.0), kNever);
}

}  // namespace
}  // namespace gpunion::util
