// SHA-256 against NIST FIPS 180-4 test vectors.
#include "util/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace gpunion::util {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hex_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("wor");
  h.update("ld");
  EXPECT_EQ(h.hex_digest(), Sha256::hex_of("hello world"));
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.update("first");
  (void)h.hex_digest();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.hex_digest(), Sha256::hex_of("abc"));
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-second-block path.
  const std::string input(64, 'x');
  Sha256 a;
  a.update(input);
  Sha256 b;
  for (char c : input) b.update(&c, 1);
  EXPECT_EQ(a.hex_digest(), b.hex_digest());
}

TEST(Sha256Test, FiftyFiveAndFiftySixBytePadding) {
  // 55 bytes: length fits in the same block; 56: forces an extra block.
  EXPECT_EQ(Sha256::hex_of(std::string(55, 'a')),
            Sha256::hex_of(std::string(55, 'a')));
  EXPECT_NE(Sha256::hex_of(std::string(55, 'a')),
            Sha256::hex_of(std::string(56, 'a')));
}

TEST(Sha256Test, DigestBytesMatchHex) {
  Sha256 h;
  h.update("abc");
  const auto digest = h.digest();
  EXPECT_EQ(digest[0], 0xba);
  EXPECT_EQ(digest[1], 0x78);
  EXPECT_EQ(digest[31], 0xad);
}

}  // namespace
}  // namespace gpunion::util
