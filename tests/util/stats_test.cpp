#include "util/stats.h"

#include <gtest/gtest.h>

namespace gpunion::util {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (double v : {4.0, 1.0, 7.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(RunningStatsTest, VarianceMatchesTextbook) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(SampleSetTest, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSetTest, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(99), 3.5);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10);
  s.add(0);
  s.add(20);
  EXPECT_DOUBLE_EQ(s.median(), 10);
  EXPECT_DOUBLE_EQ(s.min(), 0);
}

TEST(TimeWeightedValueTest, ConstantSignal) {
  TimeWeightedValue v(0.5);
  EXPECT_DOUBLE_EQ(v.average(0, 10), 0.5);
}

TEST(TimeWeightedValueTest, StepFunction) {
  TimeWeightedValue v(0.0);
  v.set(5.0, 1.0);  // 0 for [0,5), 1 for [5,10)
  EXPECT_DOUBLE_EQ(v.average(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(v.average(5, 10), 1.0);
  EXPECT_DOUBLE_EQ(v.average(0, 5), 0.0);
}

TEST(TimeWeightedValueTest, MultipleSteps) {
  TimeWeightedValue v(0.0);
  v.set(2.0, 1.0);
  v.set(4.0, 0.5);
  // [0,2): 0, [2,4): 1, [4,8): 0.5 -> (0 + 2 + 2) / 8
  EXPECT_DOUBLE_EQ(v.average(0, 8), 0.5);
}

TEST(TimeWeightedValueTest, WindowBeforeFirstChange) {
  TimeWeightedValue v(0.25);
  v.set(100.0, 1.0);
  EXPECT_DOUBLE_EQ(v.average(0, 10), 0.25);
}

TEST(TimeWeightedValueTest, DuplicateTimeOverwrites) {
  TimeWeightedValue v(0.0);
  v.set(5.0, 1.0);
  v.set(5.0, 0.2);
  EXPECT_DOUBLE_EQ(v.average(0, 10), 0.1);
  EXPECT_DOUBLE_EQ(v.current(), 0.2);
}

}  // namespace
}  // namespace gpunion::util
