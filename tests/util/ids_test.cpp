#include "util/ids.h"

#include <gtest/gtest.h>

#include <set>

namespace gpunion::util {
namespace {

TEST(IdsTest, MachineIdDeterministic) {
  EXPECT_EQ(make_machine_id("ws-01", "salt"), make_machine_id("ws-01", "salt"));
}

TEST(IdsTest, MachineIdDependsOnHostnameAndSalt) {
  EXPECT_NE(make_machine_id("ws-01", "salt"), make_machine_id("ws-02", "salt"));
  EXPECT_NE(make_machine_id("ws-01", "a"), make_machine_id("ws-01", "b"));
}

TEST(IdsTest, MachineIdFormat) {
  const std::string id = make_machine_id("ws-01", "salt");
  EXPECT_EQ(id.size(), 2u + 16u);
  EXPECT_EQ(id.substr(0, 2), "m-");
  for (char c : id.substr(2)) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(IdsTest, AuthTokensUniqueAndHex) {
  Rng rng(42);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    const std::string token = make_auth_token(rng);
    EXPECT_EQ(token.size(), 32u);
    for (char c : token) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
    }
    EXPECT_TRUE(seen.insert(token).second) << "duplicate token";
  }
}

TEST(IdsTest, SequenceCountsUp) {
  IdSequence seq("job");
  EXPECT_EQ(seq.next(), "job-0");
  EXPECT_EQ(seq.next(), "job-1");
  EXPECT_EQ(seq.count(), 2u);
}

}  // namespace
}  // namespace gpunion::util
