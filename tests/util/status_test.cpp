#include "util/status.h"

#include <gtest/gtest.h>

namespace gpunion::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = unavailable_error("node n3 departed");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "node n3 departed");
  EXPECT_EQ(s.to_string(), "unavailable: node n3 departed");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(invalid_argument_error("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(not_found_error("").code(), StatusCode::kNotFound);
  EXPECT_EQ(already_exists_error("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(permission_denied_error("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(unavailable_error("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(resource_exhausted_error("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(failed_precondition_error("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(deadline_exceeded_error("").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(aborted_error("").code(), StatusCode::kAborted);
  EXPECT_EQ(internal_error("").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status::ok());
  EXPECT_EQ(not_found_error("x"), not_found_error("x"));
  EXPECT_FALSE(not_found_error("x") == not_found_error("y"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(0), 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = not_found_error("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return not_found_error("inner"); };
  auto outer = [&]() -> Status {
    GPUNION_RETURN_IF_ERROR(fails());
    return Status();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);

  auto succeeds = [] { return Status(); };
  auto outer_ok = [&]() -> Status {
    GPUNION_RETURN_IF_ERROR(succeeds());
    return already_exists_error("reached end");
  };
  EXPECT_EQ(outer_ok().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace gpunion::util
