// Client API behaviour against a live platform.
#include "gpunion/client.h"

#include <gtest/gtest.h>

namespace gpunion {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : env_(77), platform_(env_, paper_campus()) {
    platform_.start();
    env_.run_until(5.0);
  }

  sim::Environment env_;
  Platform platform_;
};

TEST_F(ClientTest, GeneratesSequentialGroupScopedIds) {
  Client client(platform_, "vision");
  auto a = client.submit_training(workload::cnn_small(), 0.1);
  auto b = client.submit_training(workload::cnn_small(), 0.1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, "vision-job-0");
  EXPECT_EQ(*b, "vision-job-1");
}

TEST_F(ClientTest, RejectsNonPositiveDurations) {
  Client client(platform_, "vision");
  EXPECT_FALSE(client.submit_training(workload::cnn_small(), 0.0).ok());
  EXPECT_FALSE(client.submit_training(workload::cnn_small(), -1.0).ok());
  EXPECT_FALSE(client.request_session(0.0).ok());
}

TEST_F(ClientTest, OptionsPropagateToJobSpec) {
  Client client(platform_, "bio");
  SubmitOptions options;
  options.checkpoint_interval = util::minutes(7);
  options.preferred_storage = {"nas-campus"};
  options.priority = 3;
  options.home_hostname = "srv-bio-0";
  auto job = client.submit_training(workload::cnn_large(), 1.0, options);
  ASSERT_TRUE(job.ok());
  const auto* record = client.status(*job);
  ASSERT_NE(record, nullptr);
  EXPECT_DOUBLE_EQ(record->spec.checkpoint_interval, util::minutes(7));
  EXPECT_EQ(record->spec.preferred_storage,
            std::vector<std::string>{"nas-campus"});
  EXPECT_EQ(record->spec.requirements.priority, 3);
  EXPECT_EQ(record->spec.owner_node, Platform::machine_id_for("srv-bio-0"));
}

TEST_F(ClientTest, SubmitModelEstimatesAndRuns) {
  Client client(platform_, "nlp");
  auto job = client.submit_model(workload::bert_base_model());
  ASSERT_TRUE(job.ok()) << job.status();
  const auto* record = client.status(*job);
  ASSERT_NE(record, nullptr);
  // BERT-base fits a consumer GPU; requirements were estimated, not given.
  EXPECT_GT(record->spec.requirements.gpu_memory_gb, 2.0);
  EXPECT_LE(record->spec.requirements.gpu_memory_gb, 24.0);
  EXPECT_GT(record->spec.state.state_bytes, 1ULL << 30);
  env_.run_until(env_.now() + util::minutes(2));
  EXPECT_EQ(record->phase, sched::JobPhase::kRunning);
}

TEST_F(ClientTest, SubmitModelRoutesBigModelsToBigGpus) {
  Client client(platform_, "theory");
  auto job = client.submit_model(workload::gpt2_xl_model());
  ASSERT_TRUE(job.ok());
  env_.run_until(env_.now() + util::minutes(2));
  const auto* record = client.status(*job);
  ASSERT_EQ(record->phase, sched::JobPhase::kRunning);
  const auto* node = platform_.coordinator().directory().find(record->node);
  ASSERT_NE(node, nullptr);
  // > 24 GB footprint: only the A100 or A6000 servers qualify.
  EXPECT_GE(node->gpu_memory_gb, 48.0);
}

TEST_F(ClientTest, SubmitModelRejectsEmptyModel) {
  Client client(platform_, "nlp");
  workload::ModelDescription empty;
  empty.parameter_count = 0;
  EXPECT_FALSE(client.submit_model(empty).ok());
}

TEST_F(ClientTest, CancelThroughClient) {
  Client client(platform_, "vision");
  auto job = client.submit_training(workload::cnn_small(), 2.0);
  ASSERT_TRUE(job.ok());
  env_.run_until(env_.now() + 30.0);
  ASSERT_TRUE(client.cancel(*job).is_ok());
  env_.run_until(env_.now() + 30.0);
  EXPECT_EQ(client.status(*job)->phase, sched::JobPhase::kCancelled);
}

TEST_F(ClientTest, StatusUnknownJobIsNull) {
  Client client(platform_, "vision");
  EXPECT_EQ(client.status("ghost"), nullptr);
}

TEST(CampusConfigTest, PaperFleetShape) {
  const CampusConfig config = paper_campus();
  ASSERT_EQ(config.nodes.size(), 11u);
  int gpus = 0;
  int workstations = 0;
  for (const auto& node : config.nodes) {
    gpus += static_cast<int>(node.spec.gpus.size());
    if (node.spec.gpus.size() == 1) ++workstations;
  }
  EXPECT_EQ(gpus, 22);        // 8x1 + 8 + 2 + 4
  EXPECT_EQ(workstations, 8); // "8 servers functioned as workstations"
  EXPECT_EQ(config.storage.size(), 1u);
  EXPECT_EQ(paper_groups().size(), 5u);
}

}  // namespace
}  // namespace gpunion
