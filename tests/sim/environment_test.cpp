#include "sim/environment.h"

#include <gtest/gtest.h>

#include <vector>

namespace gpunion::sim {
namespace {

TEST(EnvironmentTest, ClockAdvancesWithEvents) {
  Environment env;
  EXPECT_DOUBLE_EQ(env.now(), 0.0);
  double seen = -1;
  env.schedule_at(5.0, [&] { seen = env.now(); });
  env.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(env.now(), 5.0);
}

TEST(EnvironmentTest, ScheduleAfterIsRelative) {
  Environment env;
  std::vector<double> times;
  env.schedule_at(10.0, [&] {
    env.schedule_after(2.5, [&] { times.push_back(env.now()); });
  });
  env.run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 12.5);
}

TEST(EnvironmentTest, RunUntilAdvancesClockExactly) {
  Environment env;
  int fired = 0;
  env.schedule_at(1.0, [&] { ++fired; });
  env.schedule_at(100.0, [&] { ++fired; });
  env.run_until(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(env.now(), 50.0);
  EXPECT_EQ(env.pending_events(), 1u);
}

TEST(EnvironmentTest, RunUntilIncludesBoundary) {
  Environment env;
  int fired = 0;
  env.schedule_at(10.0, [&] { ++fired; });
  env.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(EnvironmentTest, CancelStopsEvent) {
  Environment env;
  bool fired = false;
  const EventId id = env.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(env.cancel(id));
  env.run();
  EXPECT_FALSE(fired);
}

TEST(EnvironmentTest, RunWithLimit) {
  Environment env;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    env.schedule_at(i, [&] { ++fired; });
  }
  EXPECT_EQ(env.run(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(EnvironmentTest, EventsScheduledDuringRunExecute) {
  Environment env;
  std::vector<int> order;
  env.schedule_at(1.0, [&] {
    order.push_back(1);
    env.schedule_at(2.0, [&] { order.push_back(2); });
  });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EnvironmentTest, ForkRngDeterministic) {
  Environment env1(99), env2(99);
  auto a = env1.fork_rng("x");
  auto b = env2.fork_rng("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  auto c = env1.fork_rng("y");
  EXPECT_NE(env1.fork_rng("x").next_u64(), c.next_u64());
}

TEST(PeriodicTimerTest, TicksAtPeriod) {
  Environment env;
  std::vector<double> ticks;
  PeriodicTimer timer(env, 2.0, [&] { ticks.push_back(env.now()); });
  timer.start();
  env.run_until(7.0);
  EXPECT_EQ(ticks, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(PeriodicTimerTest, StartAfterInitialDelay) {
  Environment env;
  std::vector<double> ticks;
  PeriodicTimer timer(env, 5.0, [&] { ticks.push_back(env.now()); });
  timer.start_after(0);
  env.run_until(11.0);
  EXPECT_EQ(ticks, (std::vector<double>{0.0, 5.0, 10.0}));
}

TEST(PeriodicTimerTest, StopFromWithinCallback) {
  Environment env;
  int ticks = 0;
  PeriodicTimer timer(env, 1.0, [&] {
    if (++ticks == 3) timer.stop();
  });
  timer.start();
  env.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimerTest, DestructorCancels) {
  Environment env;
  int ticks = 0;
  {
    PeriodicTimer timer(env, 1.0, [&] { ++ticks; });
    timer.start();
    env.run_until(2.5);
  }
  env.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

}  // namespace
}  // namespace gpunion::sim
