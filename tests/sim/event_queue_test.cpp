#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gpunion::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1.0, [&] { fired.push_back(1); });
  const EventId mid = q.push(2.0, [&] { fired.push_back(2); });
  q.push(3.0, [&] { fired.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueueTest, EmptyQueueNextTimeIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), util::kNever);
}

TEST(EventQueueTest, PopReturnsMetadata) {
  EventQueue q;
  const EventId id = q.push(7.5, [] {});
  auto event = q.pop();
  EXPECT_DOUBLE_EQ(event.time, 7.5);
  EXPECT_EQ(event.id, id);
}

}  // namespace
}  // namespace gpunion::sim
