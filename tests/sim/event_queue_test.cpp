#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gpunion::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1.0, [&] { fired.push_back(1); });
  const EventId mid = q.push(2.0, [&] { fired.push_back(2); });
  q.push(3.0, [&] { fired.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueueTest, EmptyQueueNextTimeIsNever) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), util::kNever);
}

TEST(EventQueueTest, PopReturnsMetadata) {
  EventQueue q;
  const EventId id = q.push(7.5, [] {});
  auto event = q.pop();
  EXPECT_DOUBLE_EQ(event.time, 7.5);
  EXPECT_EQ(event.id, id);
}

TEST(EventQueueTest, LiveSizeAndTombstoneStats) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(q.push(static_cast<double>(i), [] {}));
  }
  EXPECT_EQ(q.live_size(), 10u);
  EXPECT_EQ(q.tombstones(), 0u);
  for (int i = 0; i < 4; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.live_size(), 6u);
  EXPECT_EQ(q.tombstones(), 4u);  // below the compaction floor: kept
}

TEST(EventQueueTest, CompactionDropsTombstoneMajority) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(q.push(static_cast<double>(i), [] {}));
  }
  // Cancel every other event, then a few more so tombstones win.
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  for (std::size_t i = 1; i < 20; i += 2) q.cancel(ids[i]);
  EXPECT_GE(q.compactions(), 1u);
  // The invariant compaction enforces: tombstones never outnumber live
  // events (cancels after the rebuild may leave a small minority behind).
  EXPECT_LE(q.tombstones(), q.live_size());
  EXPECT_EQ(q.live_size(), 90u);
}

TEST(EventQueueTest, CompactionPreservesOrderAndFifoTies) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  // Groups of six share a firing time: two survivors (a FIFO tie the heap
  // rebuild must preserve) and four victims.
  for (int i = 0; i < 120; ++i) {
    const double t = static_cast<double>(i / 6);
    if (i % 6 < 2) {
      q.push(t, [&fired, i] { fired.push_back(i); });
    } else {
      doomed.push_back(q.push(t, [&fired, i] { fired.push_back(i); }));
    }
  }
  // 80 tombstones vs 40 live: well past the majority threshold.
  for (EventId id : doomed) q.cancel(id);
  EXPECT_GE(q.compactions(), 1u);
  while (!q.empty()) q.pop().fn();
  std::vector<int> expected;
  for (int g = 0; g < 20; ++g) {
    expected.push_back(6 * g);
    expected.push_back(6 * g + 1);
  }
  EXPECT_EQ(fired, expected);
}

TEST(EventQueueTest, CancelAfterCompactionStillWorks) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 128; ++i) {
    ids.push_back(q.push(static_cast<double>(i), [] {}));
  }
  for (std::size_t i = 0; i < 100; ++i) q.cancel(ids[i]);
  ASSERT_GE(q.compactions(), 1u);
  // Ids issued before the rebuild remain valid handles.
  EXPECT_TRUE(q.cancel(ids[120]));
  EXPECT_FALSE(q.cancel(ids[50]));  // already cancelled
  EXPECT_DOUBLE_EQ(q.next_time(), 100.0);
}

}  // namespace
}  // namespace gpunion::sim
