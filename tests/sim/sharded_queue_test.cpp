#include "sim/sharded_event_queue.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/event_queue.h"
#include "util/time.h"

namespace gpunion::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ShardedEventQueueTest, RoutesPushesToTheirShard) {
  ShardedEventQueue q(4);
  int fired = -1;
  q.push(2, 1.0, [&] { fired = 2; });
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_DOUBLE_EQ(q.shard_next_time(2), 1.0);
  EXPECT_DOUBLE_EQ(q.shard_next_time(0), util::kNever);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);

  EventQueue::Event event;
  EXPECT_FALSE(q.shard_try_pop(0, kInf, &event));
  ASSERT_TRUE(q.shard_try_pop(2, kInf, &event));
  event.fn();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(ShardedEventQueueTest, PopRespectsWindowBoundStrictly) {
  ShardedEventQueue q(2);
  q.push(0, 1.0, [] {});
  q.push(0, 2.0, [] {});
  EventQueue::Event event;
  // bound is exclusive: an event AT the bound must not pop.
  EXPECT_FALSE(q.shard_try_pop(0, 1.0, &event));
  ASSERT_TRUE(q.shard_try_pop(0, 1.5, &event));
  EXPECT_DOUBLE_EQ(event.time, 1.0);
  EXPECT_FALSE(q.shard_try_pop(0, 1.5, &event));
}

TEST(ShardedEventQueueTest, CancelAcrossShards) {
  ShardedEventQueue q(4);
  bool fired = false;
  const EventId keep = q.push(1, 1.0, [&] { fired = true; });
  const EventId gone = q.push(3, 2.0, [&] { fired = true; });
  EXPECT_NE(keep, gone);
  EXPECT_TRUE(q.cancel(gone));
  EXPECT_FALSE(q.cancel(gone));  // second cancel is a no-op
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_EQ(q.live_size(), 1u);
  EventQueue::Event event;
  ASSERT_TRUE(q.shard_try_pop(1, kInf, &event));
  EXPECT_DOUBLE_EQ(event.time, 1.0);
}

TEST(ShardedEventQueueTest, ExclusiveLaneIsSeparate) {
  ShardedEventQueue q(2);
  q.push(0, 5.0, [] {});
  bool fired = false;
  const EventId id = q.push_exclusive(1.0, [&] { fired = true; });
  EXPECT_DOUBLE_EQ(q.exclusive_next_time(), 1.0);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);  // global min includes exclusive
  EventQueue::Event event;
  ASSERT_TRUE(q.exclusive_try_pop(kInf, &event));
  event.fn();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(q.exclusive_next_time(), util::kNever);
  // Exclusive ids are cancellable too.
  const EventId id2 = q.push_exclusive(2.0, [] {});
  EXPECT_NE(id, id2);
  EXPECT_TRUE(q.cancel(id2));
  EXPECT_FALSE(q.exclusive_try_pop(kInf, &event));
}

TEST(ShardedEventQueueTest, IdsEncodeShardAndStayUnique) {
  ShardedEventQueue q(8);
  std::vector<EventId> ids;
  for (std::size_t shard = 0; shard < 8; ++shard) {
    for (int i = 0; i < 3; ++i) {
      ids.push_back(q.push(shard, 1.0, [] {}));
    }
  }
  ids.push_back(q.push_exclusive(1.0, [] {}));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
    EXPECT_NE(ids[i], kInvalidEvent);
  }
}

TEST(ShardedEventQueueTest, SingleShardMatchesRawEventQueueOrder) {
  // kDeterministic folds every lane onto one shard — the pop order there
  // must be the raw EventQueue's (time, insertion) order exactly.
  EventQueue raw;
  ShardedEventQueue sharded(1);
  std::vector<int> raw_order, sharded_order;
  const double times[] = {3.0, 1.0, 1.0, 2.0, 1.0, 3.0, 0.5};
  for (int i = 0; i < 7; ++i) {
    raw.push(times[i], [&raw_order, i] { raw_order.push_back(i); });
    sharded.push(0, times[i], [&sharded_order, i] { sharded_order.push_back(i); });
  }
  while (!raw.empty()) raw.pop().fn();
  EventQueue::Event event;
  while (sharded.shard_try_pop(0, kInf, &event)) event.fn();
  EXPECT_EQ(sharded_order, raw_order);
}

TEST(ShardedEventQueueTest, StatsAggregateAcrossShards) {
  ShardedEventQueue q(4);
  std::vector<EventId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(q.push(static_cast<std::size_t>(i % 4), 1.0 + i, [] {}));
  }
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.cancel(ids[i]));
  EXPECT_EQ(q.live_size(), 6u);
  EXPECT_EQ(q.tombstones(), 6u);
  EXPECT_FALSE(q.empty());
}

}  // namespace
}  // namespace gpunion::sim
