// Determinism regression: kDeterministic must yield bit-identical event
// fire traces across repeated runs and across worker-count settings, and
// must reproduce the legacy single-heap order on a golden scenario.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "gpunion/client.h"
#include "gpunion/config.h"
#include "gpunion/platform.h"
#include "hw/node.h"
#include "sched/strategies.h"
#include "sim/environment.h"
#include "workload/profiles.h"

namespace gpunion::sim {
namespace {

struct FireRecord {
  double time;
  EventId id;
  bool operator==(const FireRecord& other) const {
    return time == other.time && id == other.id;
  }
};

/// Runs the golden scenario — a paper campus with training + interactive
/// load and one churn event — and returns the full event fire trace.
std::vector<FireRecord> golden_trace(const EnvConfig& config) {
  Environment env(42, config);
  std::vector<FireRecord> trace;
  env.set_fire_observer([&trace](util::SimTime t, EventId id) {
    trace.push_back({t, id});
  });
  CampusConfig campus = paper_campus();
  Platform platform(env, campus);
  platform.start();
  env.run_until(10.0);

  Client vision(platform, "vision");
  Client nlp(platform, "nlp");
  auto training = vision.submit_training(workload::cnn_small(), 2.0);
  auto notebook = nlp.request_session(0.5);
  EXPECT_TRUE(training.ok());
  EXPECT_TRUE(notebook.ok());

  workload::Interruption event;
  event.machine_id = Platform::machine_id_for("ws-vision-1");
  event.kind = agent::DepartureKind::kTemporary;
  event.downtime = util::minutes(10);
  event.at = util::minutes(5);
  platform.schedule_interruption(event.at, event);

  env.run_until(util::minutes(45));
  return trace;
}

EnvConfig deterministic_with_workers(std::size_t workers) {
  EnvConfig config;
  config.mode = ExecutionMode::kDeterministic;
  config.worker_threads = workers;
  return config;
}

TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const auto a = golden_trace(deterministic_with_workers(1));
  const auto b = golden_trace(deterministic_with_workers(1));
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, WorkerCountDoesNotAffectDeterministicMode) {
  // kDeterministic ignores worker_threads entirely — the trace is the
  // single-thread legacy order no matter what the knob says.
  const auto one = golden_trace(deterministic_with_workers(1));
  const auto four = golden_trace(deterministic_with_workers(4));
  const auto eight = golden_trace(deterministic_with_workers(8));
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.size(), four.size());
  EXPECT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i], four[i]) << "trace diverged at event " << i;
    ASSERT_EQ(one[i], eight[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, SimulationResultsMatchAcrossModes) {
  // The parallel schedule may interleave differently, but conserved
  // quantities — jobs completed, allocations opened, nodes registered —
  // must agree with the deterministic run on a churn-free scenario whose
  // outcome does not depend on event interleaving.
  auto run_summary = [](const EnvConfig& config) {
    Environment env(42, config);
    CampusConfig campus = paper_campus();
    Platform platform(env, campus);
    platform.start();
    env.run_until(10.0);
    Client vision(platform, "vision");
    auto job = vision.submit_training(workload::cnn_small(), 1.0);
    EXPECT_TRUE(job.ok());
    env.run_until(util::hours(3));
    const sched::JobRecord* record = platform.coordinator().job(*job);
    EXPECT_NE(record, nullptr);
    return std::pair<std::size_t, sched::JobPhase>(
        platform.database().allocation_ledger().size(),
        record == nullptr ? sched::JobPhase::kPending : record->phase);
  };
  EnvConfig det;
  EnvConfig par;
  par.mode = ExecutionMode::kParallel;
  par.worker_threads = 4;
  const auto det_summary = run_summary(det);
  const auto par_summary = run_summary(par);
  EXPECT_EQ(det_summary.second, sched::JobPhase::kCompleted);
  EXPECT_EQ(par_summary.second, sched::JobPhase::kCompleted);
  EXPECT_EQ(det_summary.first, par_summary.first);
}

/// API-fronted golden scenario: a multi-tenant burst through the request
/// plane (token bucket, DRF drain, threshold drains, group commits), plus
/// churn.  Returns the event fire trace AND the API dispatch order — the
/// request plane must not introduce any nondeterminism of its own.
std::pair<std::vector<FireRecord>, std::vector<std::string>>
api_golden_trace(const EnvConfig& config) {
  Environment env(42, config);
  std::vector<FireRecord> trace;
  env.set_fire_observer([&trace](util::SimTime t, EventId id) {
    trace.push_back({t, id});
  });
  CampusConfig campus = paper_campus();
  campus.api.enabled = true;
  campus.api.admission_rate = 50.0;
  campus.api.admission_burst = 20.0;
  campus.api.drain_interval = 0.5;
  campus.api.drain_batch = 4;
  campus.api.default_quota.max_in_flight = 3;
  campus.api.default_quota.max_queued = 8;
  campus.api.tenant_quotas["vision"].weight = 2.0;
  campus.api.tenant_quotas["vision"].max_in_flight = 3;
  campus.api.tenant_quotas["vision"].max_queued = 8;
  Platform platform(env, campus);
  std::vector<std::string> dispatch_order;
  platform.start();
  platform.api().set_dispatch_observer(
      [&dispatch_order](const std::string& tenant, const std::string& id) {
        dispatch_order.push_back(tenant + "/" + id);
      });
  env.run_until(10.0);

  // Three tenants race a burst into the plane at one instant: drain order
  // is decided purely by DRF shares and the name tie-break.
  const char* tenants[] = {"vision", "nlp", "speech"};
  int next = 0;
  for (int round = 0; round < 4; ++round) {
    for (const char* tenant : tenants) {
      std::vector<workload::JobSpec> burst;
      for (int j = 0; j < 3; ++j) {
        burst.push_back(workload::make_training_job(
            std::string(tenant) + "-job-" + std::to_string(next++),
            workload::cnn_small(), 0.05, "group-vision", env.now()));
      }
      platform.api().submit_batch(tenant, std::move(burst));
    }
    env.run_until(env.now() + 30.0);
  }

  workload::Interruption event;
  event.machine_id = Platform::machine_id_for("ws-vision-1");
  event.kind = agent::DepartureKind::kTemporary;
  event.downtime = util::minutes(10);
  event.at = env.now() + 60.0;
  platform.schedule_interruption(event.at, event);

  env.run_until(util::minutes(45));
  platform.api().drain_to_quiescence();
  return {std::move(trace), std::move(dispatch_order)};
}

TEST(DeterminismTest, ApiFrontedCampusIsBitIdentical) {
  const auto a = api_golden_trace(deterministic_with_workers(1));
  const auto b = api_golden_trace(deterministic_with_workers(1));
  ASSERT_FALSE(a.first.empty());
  ASSERT_FALSE(a.second.empty()) << "request plane never dispatched";
  ASSERT_EQ(a.second, b.second) << "API drain order diverged";
  ASSERT_EQ(a.first.size(), b.first.size());
  for (std::size_t i = 0; i < a.first.size(); ++i) {
    ASSERT_EQ(a.first[i], b.first[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, ApiDrainOrderIgnoresWorkerCount) {
  // kDeterministic ignores worker_threads: the DRF drain order and the
  // full event trace must match across the knob.
  const auto one = api_golden_trace(deterministic_with_workers(1));
  const auto four = api_golden_trace(deterministic_with_workers(4));
  const auto eight = api_golden_trace(deterministic_with_workers(8));
  ASSERT_FALSE(one.first.empty());
  EXPECT_EQ(one.second, four.second);
  EXPECT_EQ(one.second, eight.second);
  ASSERT_EQ(one.first.size(), four.first.size());
  ASSERT_EQ(one.first.size(), eight.first.size());
  for (std::size_t i = 0; i < one.first.size(); ++i) {
    ASSERT_EQ(one.first[i], four.first[i]) << "diverged at event " << i;
    ASSERT_EQ(one.first[i], eight.first[i]) << "diverged at event " << i;
  }
}

/// Time-slicing golden scenario: workstations run nvshare-mode seats under
/// the adaptive_sharing strategy, so the trace includes quantum ticks,
/// rotation swap pauses and completion re-arming — all of which must stay
/// bit-replayable.
std::vector<FireRecord> timeslice_golden_trace(const EnvConfig& config) {
  Environment env(42, config);
  std::vector<FireRecord> trace;
  env.set_fire_observer([&trace](util::SimTime t, EventId id) {
    trace.push_back({t, id});
  });
  CampusConfig campus = paper_campus();
  campus.coordinator.strategy = std::string(sched::kAdaptiveSharing);
  for (auto& node : campus.nodes) {
    if (node.spec.gpus.size() == 1) {
      node.spec = hw::with_timeslicing(std::move(node.spec), 4);
    }
  }
  Platform platform(env, campus);
  platform.start();
  env.run_until(10.0);

  Client vision(platform, "vision");
  Client nlp(platform, "nlp");
  Client theory(platform, "theory");
  // Several sessions pack into time-slice seats and rotate; one training
  // job takes a whole device alongside.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(theory.request_session(0.5).ok());
  }
  EXPECT_TRUE(nlp.request_session(0.25).ok());
  EXPECT_TRUE(vision.submit_training(workload::cnn_small(), 1.0).ok());

  workload::Interruption event;
  event.machine_id = Platform::machine_id_for("ws-vision-1");
  event.kind = agent::DepartureKind::kTemporary;
  event.downtime = util::minutes(10);
  event.at = util::minutes(8);
  platform.schedule_interruption(event.at, event);

  env.run_until(util::minutes(45));
  return trace;
}

TEST(DeterminismTest, TimesliceCampusIsBitIdentical) {
  const auto a = timeslice_golden_trace(deterministic_with_workers(1));
  const auto b = timeslice_golden_trace(deterministic_with_workers(1));
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, TimesliceTraceIgnoresWorkerCount) {
  const auto one = timeslice_golden_trace(deterministic_with_workers(1));
  const auto four = timeslice_golden_trace(deterministic_with_workers(4));
  const auto eight = timeslice_golden_trace(deterministic_with_workers(8));
  ASSERT_FALSE(one.empty());
  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i], four[i]) << "trace diverged at event " << i;
    ASSERT_EQ(one[i], eight[i]) << "trace diverged at event " << i;
  }
}

TEST(DeterminismTest, InvariantSeedReplayability) {
  // The contract GPUNION_INVARIANT_SEED harnesses rely on: same seed, same
  // config => same derived RNG streams AND same event schedule.
  Environment env1(1234, deterministic_with_workers(1));
  Environment env2(1234, deterministic_with_workers(1));
  auto rng1 = env1.fork_rng("chaos");
  auto rng2 = env2.fork_rng("chaos");
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng1.next_u64(), rng2.next_u64());
  }
}

}  // namespace
}  // namespace gpunion::sim
