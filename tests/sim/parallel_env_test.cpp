// Parallel-mode Environment: conservative windows, exclusive events,
// cross-lane causality, and a threaded campus smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "gpunion/config.h"
#include "gpunion/federated_platform.h"
#include "gpunion/platform.h"
#include "sim/environment.h"

namespace gpunion::sim {
namespace {

EnvConfig parallel_config(std::size_t workers, double lookahead = 0.0002) {
  EnvConfig config;
  config.mode = ExecutionMode::kParallel;
  config.worker_threads = workers;
  config.lookahead = lookahead;
  return config;
}

TEST(ParallelEnvTest, FiresEventsInTimeOrderPerLane) {
  Environment env(1, parallel_config(4));
  const LaneId lane = env.register_lane("a");
  std::vector<double> times;
  // One lane = one actor: its events run serially in time order even with
  // four workers, so the plain vector is safe.
  for (double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    env.schedule_at_on(lane, t, [&times, &env] { times.push_back(env.now()); });
  }
  EXPECT_EQ(env.run(), 5u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
  EXPECT_DOUBLE_EQ(env.now(), 5.0);
  EXPECT_GE(env.parallel_stats().windows, 1u);
}

TEST(ParallelEnvTest, LanesRunOnWorkerThreads) {
  Environment env(1, parallel_config(4));
  std::mutex mu;
  std::set<std::thread::id> thread_ids;
  const std::thread::id main_id = std::this_thread::get_id();
  for (int lane_index = 0; lane_index < 8; ++lane_index) {
    const LaneId lane = env.register_lane("lane");
    env.schedule_at_on(lane, 1.0, [&] {
      std::lock_guard<std::mutex> lock(mu);
      thread_ids.insert(std::this_thread::get_id());
    });
  }
  env.run();
  EXPECT_FALSE(thread_ids.empty());
  EXPECT_EQ(thread_ids.count(main_id), 0u)
      << "lane events must fire on worker threads";
}

TEST(ParallelEnvTest, ExclusiveEventRunsAlone) {
  Environment env(1, parallel_config(4));
  std::atomic<int> concurrent{0};
  std::atomic<bool> overlap_with_exclusive{false};
  std::atomic<bool> exclusive_ran{false};
  for (int lane_index = 0; lane_index < 6; ++lane_index) {
    const LaneId lane = env.register_lane("lane");
    for (int i = 0; i < 50; ++i) {
      env.schedule_at_on(lane, 1.0 + i * 0.001, [&] {
        ++concurrent;
        --concurrent;
      });
    }
  }
  env.schedule_exclusive_at(1.025, [&] {
    exclusive_ran = true;
    if (concurrent.load() != 0) overlap_with_exclusive = true;
  });
  env.run();
  EXPECT_TRUE(exclusive_ran.load());
  EXPECT_FALSE(overlap_with_exclusive.load());
  EXPECT_GE(env.parallel_stats().exclusive_events, 1u);
}

TEST(ParallelEnvTest, RunUntilAdvancesClockExactly) {
  Environment env(1, parallel_config(2));
  const LaneId lane = env.register_lane("a");
  std::atomic<int> fired{0};
  env.schedule_at_on(lane, 1.0, [&] { ++fired; });
  env.schedule_at_on(lane, 10.0, [&] { ++fired; });  // boundary included
  env.schedule_at_on(lane, 100.0, [&] { ++fired; });
  env.run_until(10.0);
  EXPECT_EQ(fired.load(), 2);
  EXPECT_DOUBLE_EQ(env.now(), 10.0);
  EXPECT_EQ(env.pending_events(), 1u);
  env.run();
  EXPECT_EQ(fired.load(), 3);
}

TEST(ParallelEnvTest, CrossLaneSendsAreCausal) {
  // A lane that pushes work onto another lane below the window bound gets
  // clamped, never lost: every message must eventually fire, at a time >=
  // its send time.
  Environment env(1, parallel_config(4, /*lookahead=*/0.01));
  const LaneId a = env.register_lane("a");
  const LaneId b = env.register_lane("b");
  std::atomic<int> received{0};
  std::atomic<bool> causality_violated{false};
  for (int i = 0; i < 100; ++i) {
    const double t = 1.0 + i * 0.001;
    env.schedule_at_on(a, t, [&env, &received, &causality_violated, b, t] {
      // Zero-delay send to the other lane: inside the lookahead window, so
      // it exercises the clamp path.
      env.schedule_at_on(b, env.now(), [&received, &causality_violated,
                                        &env, t] {
        if (env.now() < t) causality_violated = true;
        ++received;
      });
    });
  }
  env.run();
  EXPECT_EQ(received.load(), 100);
  EXPECT_FALSE(causality_violated.load());
}

TEST(ParallelEnvTest, CancelPendingEventFromMainThread) {
  Environment env(1, parallel_config(2));
  const LaneId lane = env.register_lane("a");
  std::atomic<bool> fired{false};
  const EventId id = env.schedule_at_on(lane, 5.0, [&] { fired = true; });
  EXPECT_TRUE(env.cancel(id));
  env.run();
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(env.queue_stats().tombstones, 0u)
      << "run() should have compacted or popped the tombstone";
}

TEST(ParallelEnvTest, WorkerStatsAccount) {
  Environment env(1, parallel_config(3));
  for (int lane_index = 0; lane_index < 6; ++lane_index) {
    const LaneId lane = env.register_lane("lane");
    for (int i = 0; i < 10; ++i) {
      env.schedule_at_on(lane, 1.0 + i, [] {});
    }
  }
  const std::size_t fired = env.run();
  EXPECT_EQ(fired, 60u);
  EXPECT_EQ(env.processed_events(), 60u);
  std::uint64_t total = 0;
  for (const std::uint64_t n : env.parallel_stats().worker_events) total += n;
  EXPECT_EQ(total, 60u);
  EXPECT_GE(env.parallel_stats().ideal_wall_s, 0.0);
  EXPECT_GE(env.parallel_stats().total_busy_s,
            env.parallel_stats().ideal_wall_s);
}

TEST(ParallelEnvTest, CampusSmoke) {
  // A small campus driven end-to-end in kParallel: agents heartbeat on
  // their own lanes, the control plane runs on the platform lane, the
  // write-behind commits fork-join across the shard executor.
  Environment env(7, parallel_config(4));
  CampusConfig config = paper_campus();
  Platform platform(env, config);
  platform.start();
  env.run_until(120.0);
  int active = 0;
  for (const sched::NodeInfo* node :
       platform.coordinator().directory().all()) {
    if (node->status == db::NodeStatus::kActive) ++active;
  }
  EXPECT_EQ(active, static_cast<int>(config.nodes.size()));
  EXPECT_GT(env.processed_events(), 100u);
  EXPECT_GT(platform.database().op_count(), 0u);
  if (platform.database().executor() != nullptr) {
    EXPECT_GT(platform.database().executor()->tasks_run(), 0u);
  }
}

TEST(ParallelEnvTest, FederatedCampusSmoke) {
  // Two federated regions in kParallel: each region's control plane is its
  // own actor lane, gossip and forwards cross regions over the WAN, and
  // everything runs under real worker threads (this is the configuration
  // the TSan CI job certifies for the federation tier).
  Environment env(11, parallel_config(4));
  FederationConfig config;
  for (const std::string name : {"east", "west"}) {
    RegionConfig region;
    region.name = name;
    region.campus = paper_campus();
    for (auto& node : region.campus.nodes) {
      node.spec.hostname = name + "-" + node.spec.hostname;
    }
    config.regions.push_back(std::move(region));
  }
  config.metrics_interval = 1e9;
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(60.0);
  for (std::size_t g = 0; g < fed.region_count(); ++g) {
    EXPECT_GT(fed.region(g).coordinator().stats().heartbeats_processed, 0u)
        << "region " << g;
  }
  EXPECT_GT(fed.stats().digests_published, 0u);
}

}  // namespace
}  // namespace gpunion::sim
