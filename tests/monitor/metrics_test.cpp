#include "monitor/metrics.h"

#include <gtest/gtest.h>

namespace gpunion::monitor {
namespace {

TEST(CounterTest, Monotonic) {
  Counter c;
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  c.increment();
  c.increment(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(HistogramTest, BucketsCumulative) {
  Histogram h({1.0, 5.0, 10.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(7.0);
  h.observe(100.0);
  const auto counts = h.cumulative_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(counts[0], 1u);      // <= 1
  EXPECT_EQ(counts[1], 2u);      // <= 5
  EXPECT_EQ(counts[2], 3u);      // <= 10
  EXPECT_EQ(counts[3], 4u);      // <= Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.5);
}

TEST(HistogramTest, BoundaryValueGoesToLowerBucket) {
  Histogram h({1.0, 5.0});
  h.observe(1.0);  // le="1" bucket includes 1.0
  EXPECT_EQ(h.cumulative_counts()[0], 1u);
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h({10, 20, 30, 40});
  for (int i = 0; i < 100; ++i) h.observe(i % 40 + 0.5);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 10.0);
  EXPECT_LE(median, 30.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 0.0);
}

TEST(MetricFamilyTest, LabelChildrenAreDistinct) {
  MetricFamily family("jobs", "help", MetricType::kCounter);
  family.counter({{"node", "a"}}).increment();
  family.counter({{"node", "b"}}).increment(5);
  EXPECT_DOUBLE_EQ(family.counter({{"node", "a"}}).value(), 1.0);
  EXPECT_DOUBLE_EQ(family.counter({{"node", "b"}}).value(), 5.0);
  EXPECT_EQ(family.counters().size(), 2u);
}

TEST(MetricRegistryTest, FamiliesAreSingletons) {
  MetricRegistry registry;
  auto& a = registry.counter_family("x", "help");
  auto& b = registry.counter_family("x", "help");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.families().size(), 1u);
}

TEST(MetricRegistryTest, TypeConflictThrows) {
  MetricRegistry registry;
  registry.counter_family("x", "help");
  EXPECT_THROW(registry.gauge_family("x", "help"), std::invalid_argument);
}

TEST(MetricRegistryTest, FindReturnsNullForUnknown) {
  MetricRegistry registry;
  EXPECT_EQ(registry.find("ghost"), nullptr);
  registry.gauge_family("known", "help");
  EXPECT_NE(registry.find("known"), nullptr);
}

TEST(MetricRegistryTest, HistogramFamilyPropagatesBounds) {
  MetricRegistry registry;
  auto& family = registry.histogram_family("lat", "help", {1.0, 2.0});
  auto& h = family.histogram({{"op", "dispatch"}});
  EXPECT_EQ(h.bounds().size(), 2u);
}

}  // namespace
}  // namespace gpunion::monitor
