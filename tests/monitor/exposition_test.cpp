#include "monitor/exposition.h"

#include <gtest/gtest.h>

namespace gpunion::monitor {
namespace {

TEST(ExpositionTest, CounterFormat) {
  MetricFamily family("gpunion_jobs_total", "Total jobs",
                      MetricType::kCounter);
  family.counter({{"group", "vision"}}).increment(3);
  const std::string text = expose_family(family);
  EXPECT_NE(text.find("# HELP gpunion_jobs_total Total jobs\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gpunion_jobs_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("gpunion_jobs_total{group=\"vision\"} 3\n"),
            std::string::npos);
}

TEST(ExpositionTest, GaugeWithoutLabels) {
  MetricFamily family("gpunion_nodes", "Active nodes", MetricType::kGauge);
  family.gauge().set(11);
  const std::string text = expose_family(family);
  EXPECT_NE(text.find("gpunion_nodes 11\n"), std::string::npos);
}

TEST(ExpositionTest, HistogramBucketsAndSum) {
  MetricFamily family("latency", "h", MetricType::kHistogram, {0.1, 1.0});
  auto& h = family.histogram();
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = expose_family(family);
  EXPECT_NE(text.find("latency_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("latency_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_sum 5.55\n"), std::string::npos);
}

TEST(ExpositionTest, LabelsSortedAndEscaped) {
  MetricFamily family("m", "h", MetricType::kGauge);
  family.gauge({{"z", "last"}, {"a", "va\"l\\ue\n"}}).set(1);
  const std::string text = expose_family(family);
  // Labels render in sorted key order with escapes applied.
  EXPECT_NE(text.find("m{a=\"va\\\"l\\\\ue\\n\",z=\"last\"} 1"),
            std::string::npos);
}

TEST(ExpositionTest, RegistryRendersAllFamiliesInNameOrder) {
  MetricRegistry registry;
  registry.gauge_family("b_metric", "second").gauge().set(2);
  registry.gauge_family("a_metric", "first").gauge().set(1);
  const std::string text = expose_registry(registry);
  const auto pos_a = text.find("a_metric");
  const auto pos_b = text.find("b_metric");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

TEST(ExpositionTest, EscapeLabelValue) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
}

}  // namespace
}  // namespace gpunion::monitor
