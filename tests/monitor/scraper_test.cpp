#include "monitor/scraper.h"

#include <gtest/gtest.h>

namespace gpunion::monitor {
namespace {

TEST(ScraperTest, PersistsGaugesToDatabase) {
  sim::Environment env;
  MetricRegistry registry;
  db::SystemDatabase database;
  auto& gauge = registry.gauge_family("gpunion_nodes", "help").gauge();
  Scraper scraper(env, registry, database, 60.0);
  scraper.start();

  gauge.set(5);
  env.run_until(61.0);
  gauge.set(8);
  env.run_until(121.0);

  const auto& series = database.series("gpunion_nodes");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].value, 5.0);
  EXPECT_DOUBLE_EQ(series[1].value, 8.0);
  EXPECT_EQ(scraper.scrape_count(), 2u);
}

TEST(ScraperTest, SeriesNameIncludesLabels) {
  EXPECT_EQ(Scraper::series_name("util", {}), "util");
  EXPECT_EQ(Scraper::series_name("util", {{"node", "ws-1"}, {"gpu", "0"}}),
            "util{gpu=0,node=ws-1}");
}

TEST(ScraperTest, LabeledGaugesGetDistinctSeries) {
  sim::Environment env;
  MetricRegistry registry;
  db::SystemDatabase database;
  auto& family = registry.gauge_family("busy", "help");
  family.gauge({{"node", "a"}}).set(1);
  family.gauge({{"node", "b"}}).set(2);
  Scraper scraper(env, registry, database, 10.0);
  scraper.scrape_once();
  EXPECT_EQ(database.series("busy{node=a}").size(), 1u);
  EXPECT_EQ(database.series("busy{node=b}").size(), 1u);
}

TEST(ScraperTest, HistogramPersistsMean) {
  sim::Environment env;
  MetricRegistry registry;
  db::SystemDatabase database;
  auto& h = registry.histogram_family("lat", "help", {1.0}).histogram();
  h.observe(2.0);
  h.observe(4.0);
  Scraper scraper(env, registry, database, 10.0);
  scraper.scrape_once();
  const auto& series = database.series("lat_mean");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].value, 3.0);
}

TEST(ScraperTest, StopHaltsScraping) {
  sim::Environment env;
  MetricRegistry registry;
  db::SystemDatabase database;
  registry.gauge_family("g", "h").gauge().set(1);
  Scraper scraper(env, registry, database, 10.0);
  scraper.start();
  env.run_until(11.0);
  scraper.stop();
  env.run_until(100.0);
  EXPECT_EQ(scraper.scrape_count(), 1u);
}

}  // namespace
}  // namespace gpunion::monitor
