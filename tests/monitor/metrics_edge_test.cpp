// Edge cases of the metrics primitives (PR 8 satellite): Counter's
// monotonicity guard and Histogram::quantile on empty histograms, clamped
// quantiles and mass concentrated in the +Inf bucket.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "monitor/metrics.h"

namespace gpunion::monitor {
namespace {

TEST(CounterEdgeTest, NegativeIncrementIsIgnored) {
  Counter c;
  c.increment(5);
  c.increment(-3);
  EXPECT_DOUBLE_EQ(c.value(), 5.0);
}

TEST(CounterEdgeTest, NanIncrementIsIgnored) {
  Counter c;
  c.increment(2);
  c.increment(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(c.value(), 2.0);
}

TEST(CounterEdgeTest, ZeroIncrementIsAllowed) {
  Counter c;
  c.increment(0);
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  Histogram h({0.1, 1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramQuantileTest, QBelowZeroReturnsFirstOccupiedLowerEdge) {
  Histogram h({0.1, 1.0, 10.0});
  h.observe(0.5);  // lands in (0.1, 1.0] — the first bucket stays empty
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), 0.1);
}

TEST(HistogramQuantileTest, QAboveOneReturnsLastOccupiedUpperEdge) {
  Histogram h({0.1, 1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(7.0), 10.0);
}

TEST(HistogramQuantileTest, AllMassInInfBucketClampsToLargestBound) {
  Histogram h({0.1, 1.0});
  h.observe(50.0);
  h.observe(80.0);
  // The +Inf bucket has no upper edge: every quantile degrades to the
  // largest finite bound instead of interpolating toward infinity.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramQuantileTest, NanQuantileTreatedAsMedian) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(0.5);
  const double nan_q = h.quantile(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(nan_q, h.quantile(0.5));
}

TEST(HistogramQuantileTest, MedianSkipsEmptyBuckets) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  // All mass in (2, 3]: the median must interpolate inside THAT bucket,
  // never land inside the empty (1, 2].
  for (int i = 0; i < 4; ++i) h.observe(2.5);
  const double median = h.quantile(0.5);
  EXPECT_GT(median, 2.0);
  EXPECT_LE(median, 3.0);
}

TEST(HistogramQuantileTest, NoBoundsHistogramIsSane) {
  Histogram h(std::vector<double>{});
  h.observe(7.0);  // only bucket is +Inf
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

}  // namespace
}  // namespace gpunion::monitor
