// Golden-file test of the Prometheus exposition format (PR 8 satellite):
// the full expose_registry output is pinned so any drift in HELP/TYPE
// ordering, label rendering or histogram bucket lines is a diff, not a
// silent scrape break.  Plus escape/unescape round-trips and histogram
// cumulative-bucket invariants.
#include <gtest/gtest.h>

#include "monitor/exposition.h"
#include "monitor/metrics.h"

namespace gpunion::monitor {
namespace {

TEST(ExpositionGoldenTest, FullRegistrySnapshot) {
  MetricRegistry registry;
  registry.gauge_family("gpunion_nodes_active", "Active provider nodes")
      .gauge()
      .set(42);
  auto& jobs = registry.counter_family("gpunion_jobs_total", "Total jobs");
  jobs.counter({{"group", "vision"}}).increment(3);
  jobs.counter({{"group", "nlp"}}).increment(1);
  auto& latency = registry.histogram_family("gpunion_latency_seconds",
                                            "Request latency", {0.1, 1.0});
  auto& h = latency.histogram({{"stage", "dispatch"}});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  // Families in name order; labels in key order; buckets cumulative with a
  // trailing +Inf; _sum/_count after the buckets.
  const std::string expected =
      "# HELP gpunion_jobs_total Total jobs\n"
      "# TYPE gpunion_jobs_total counter\n"
      "gpunion_jobs_total{group=\"nlp\"} 1\n"
      "gpunion_jobs_total{group=\"vision\"} 3\n"
      "# HELP gpunion_latency_seconds Request latency\n"
      "# TYPE gpunion_latency_seconds histogram\n"
      "gpunion_latency_seconds_bucket{le=\"0.1\",stage=\"dispatch\"} 1\n"
      "gpunion_latency_seconds_bucket{le=\"1\",stage=\"dispatch\"} 2\n"
      "gpunion_latency_seconds_bucket{le=\"+Inf\",stage=\"dispatch\"} 3\n"
      "gpunion_latency_seconds_sum{stage=\"dispatch\"} 5.55\n"
      "gpunion_latency_seconds_count{stage=\"dispatch\"} 3\n"
      "# HELP gpunion_nodes_active Active provider nodes\n"
      "# TYPE gpunion_nodes_active gauge\n"
      "gpunion_nodes_active 42\n";
  EXPECT_EQ(expose_registry(registry), expected);
}

TEST(ExpositionGoldenTest, LabelEscapeRoundTrip) {
  const std::string nasty = "back\\slash \"quoted\"\nnewline\ttab";
  EXPECT_EQ(unescape_label_value(escape_label_value(nasty)), nasty);
  // Each escape individually.
  EXPECT_EQ(unescape_label_value("a\\\\b"), "a\\b");
  EXPECT_EQ(unescape_label_value("a\\\"b"), "a\"b");
  EXPECT_EQ(unescape_label_value("a\\nb"), "a\nb");
  // Unknown escapes and a trailing backslash pass through verbatim.
  EXPECT_EQ(unescape_label_value("a\\tb"), "a\\tb");
  EXPECT_EQ(unescape_label_value("tail\\"), "tail\\");
  EXPECT_EQ(unescape_label_value(""), "");
}

TEST(ExpositionGoldenTest, EscapedLabelRendersAndRecovers) {
  MetricFamily family("m", "h", MetricType::kGauge);
  const std::string value = "pa\\th \"x\"\nend";
  family.gauge({{"k", value}}).set(1);
  const std::string text = expose_family(family);
  const std::string rendered = "m{k=\"" + escape_label_value(value) + "\"} 1\n";
  EXPECT_NE(text.find(rendered), std::string::npos);
  // The rendered escape sequence decodes back to the original value.
  const auto open = text.find("k=\"") + 3;
  const auto close = text.find("\"}", open);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(unescape_label_value(text.substr(open, close - open)), value);
}

TEST(ExpositionGoldenTest, HistogramCumulativeInvariants) {
  Histogram h({0.1, 1.0, 10.0});
  h.observe(0.05);
  h.observe(0.05);
  h.observe(3.0);
  h.observe(100.0);
  const auto cumulative = h.cumulative_counts();
  ASSERT_EQ(cumulative.size(), h.bounds().size() + 1);  // trailing +Inf
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);  // monotone
  }
  EXPECT_EQ(cumulative.back(), h.count());  // +Inf holds everything
}

}  // namespace
}  // namespace gpunion::monitor
