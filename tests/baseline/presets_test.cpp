#include "baseline/presets.h"

#include <gtest/gtest.h>

namespace gpunion::baseline {
namespace {

TEST(PresetsTest, GpunionHasEverythingOn) {
  CampusConfig config = paper_campus();
  apply_preset(config, Preset::kGpunion);
  const auto& policy = config.coordinator.policy;
  EXPECT_TRUE(policy.cross_group_sharing);
  EXPECT_TRUE(policy.checkpoint_restore);
  EXPECT_TRUE(policy.auto_migration);
  EXPECT_TRUE(policy.migrate_back);
  EXPECT_TRUE(policy.owner_reclaim);
  EXPECT_FALSE(policy.requeue_to_tail);
}

TEST(PresetsTest, KubernetesTreatsVolatilityAsFailure) {
  CampusConfig config = paper_campus();
  apply_preset(config, Preset::kKubernetes);
  const auto& policy = config.coordinator.policy;
  EXPECT_TRUE(policy.cross_group_sharing);
  EXPECT_FALSE(policy.checkpoint_restore);
  EXPECT_TRUE(policy.auto_migration);
  EXPECT_FALSE(policy.migrate_back);
  EXPECT_FALSE(policy.owner_reclaim);
  EXPECT_DOUBLE_EQ(config.agent_defaults.departure_grace, 0.0);
}

TEST(PresetsTest, SlurmRequeuesAtTail) {
  CampusConfig config = paper_campus();
  apply_preset(config, Preset::kSlurm);
  EXPECT_TRUE(config.coordinator.policy.requeue_to_tail);
  EXPECT_FALSE(config.coordinator.policy.checkpoint_restore);
}

TEST(PresetsTest, ManualIsSiloed) {
  CampusConfig config = paper_campus();
  apply_preset(config, Preset::kManual);
  EXPECT_FALSE(config.coordinator.policy.cross_group_sharing);
  EXPECT_FALSE(config.coordinator.policy.auto_migration);
}

TEST(PresetsTest, AdaptJobStripsCheckpointsForNonAlcPlatforms) {
  workload::JobSpec job;
  job.checkpoint_interval = 600.0;
  EXPECT_DOUBLE_EQ(adapt_job(job, Preset::kGpunion).checkpoint_interval,
                   600.0);
  EXPECT_DOUBLE_EQ(adapt_job(job, Preset::kManual).checkpoint_interval,
                   600.0);
  EXPECT_DOUBLE_EQ(adapt_job(job, Preset::kKubernetes).checkpoint_interval,
                   0.0);
  EXPECT_DOUBLE_EQ(adapt_job(job, Preset::kSlurm).checkpoint_interval, 0.0);
}

TEST(PresetsTest, Names) {
  EXPECT_EQ(preset_name(Preset::kGpunion), "GPUnion");
  EXPECT_EQ(preset_name(Preset::kKubernetes), "Kubernetes-like");
  EXPECT_EQ(preset_name(Preset::kSlurm), "Slurm-like");
  EXPECT_EQ(preset_name(Preset::kManual), "Manual");
}

}  // namespace
}  // namespace gpunion::baseline
