#include "baseline/traits.h"

#include <gtest/gtest.h>

namespace gpunion::baseline {
namespace {

TEST(TraitsTest, FivePlatformsInPaperOrder) {
  const auto& platforms = table1_platforms();
  ASSERT_EQ(platforms.size(), 5u);
  EXPECT_EQ(platforms[0].platform, "OpenStack");
  EXPECT_EQ(platforms[1].platform, "CloudStack");
  EXPECT_EQ(platforms[2].platform, "OpenNebula");
  EXPECT_EQ(platforms[3].platform, "Kubernetes");
  EXPECT_EQ(platforms[4].platform, "GPUnion");
}

TEST(TraitsTest, OnlyGpunionIsVoluntaryAndAutonomous) {
  for (const auto& platform : table1_platforms()) {
    if (platform.platform == "GPUnion") {
      EXPECT_EQ(platform.voluntary_participation, "Yes");
      EXPECT_EQ(platform.provider_autonomy, "Full");
      EXPECT_EQ(platform.fault_tolerance_model, "Workload");
      EXPECT_EQ(platform.dynamic_node_joining, "Native");
    } else {
      EXPECT_EQ(platform.voluntary_participation, "No");
      EXPECT_NE(platform.provider_autonomy, "Full");
      EXPECT_EQ(platform.fault_tolerance_model, "Infrastructure");
    }
  }
}

TEST(TraitsTest, RenderedTableContainsAllRowsAndPlatforms) {
  const std::string table = render_table1();
  for (const auto& platform : table1_platforms()) {
    EXPECT_NE(table.find(platform.platform), std::string::npos);
  }
  EXPECT_NE(table.find("Provider Autonomy"), std::string::npos);
  EXPECT_NE(table.find("Campus Network Optimization"), std::string::npos);
  EXPECT_NE(table.find("Campus LANs"), std::string::npos);
}

TEST(TraitsTest, TableRowsHaveEqualColumnStructure) {
  const std::string table = render_table1();
  // 1 header + 12 rows, all newline-terminated.
  int lines = 0;
  for (char c : table) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 13);
}

}  // namespace
}  // namespace gpunion::baseline
