// Property tests for the DRF queue in isolation (no platform, no sim):
// progressive filling over random tenant populations must satisfy the
// headline guarantees of Ghodsi et al. (NSDI'11) in the discrete-job
// setting the request plane actually runs:
//
//   * share-ratio invariance — scaling every demand AND the capacity by a
//     common factor leaves the grant sequence bit-identical;
//   * strategy-proofness spot checks — uniformly inflating a tenant's
//     demands never wins it more grants than asking honestly;
//   * degenerate single-tenant case — DRF collapses to plain FIFO.
//
// Seeds derive from GPUNION_INVARIANT_SEED like every other harness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/drf.h"
#include "util/rng.h"

namespace gpunion::api {
namespace {

struct Scenario {
  int tenants = 0;
  ResourceVector capacity;
  double factor = 1.0;
  // Per tenant: weight and per-job demands, in submission order.
  std::vector<double> weights;
  std::vector<std::vector<ResourceVector>> demands;
};

Scenario random_scenario(util::Rng& rng) {
  Scenario s;
  s.tenants = static_cast<int>(rng.uniform_int(2, 6));
  s.capacity = {static_cast<double>(rng.uniform_int(4, 16)),
                static_cast<double>(rng.uniform_int(32, 256))};
  s.factor = rng.bernoulli(0.5) ? 1.0 : 2.0;
  for (int t = 0; t < s.tenants; ++t) {
    s.weights.push_back(rng.bernoulli(0.25) ? 2.0 : 1.0);
    std::vector<ResourceVector> jobs;
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    for (int j = 0; j < n; ++j) {
      jobs.push_back({static_cast<double>(rng.uniform_int(1, 4)),
                      static_cast<double>(rng.uniform_int(4, 40))});
    }
    s.demands.push_back(std::move(jobs));
  }
  return s;
}

std::string tenant_name(int index) { return "p" + std::to_string(index); }

DrfQueue build_queue(const Scenario& s, double demand_scale = 1.0,
                     double capacity_scale = 1.0) {
  DrfQueue queue({s.capacity.gpus * capacity_scale,
                  s.capacity.memory_gb * capacity_scale});
  for (int t = 0; t < s.tenants; ++t) {
    queue.set_weight(tenant_name(t), s.weights[static_cast<std::size_t>(t)]);
    int j = 0;
    for (const ResourceVector& d :
         s.demands[static_cast<std::size_t>(t)]) {
      DrfQueue::Item item;
      item.spec.id = tenant_name(t) + "-job-" + std::to_string(j++);
      item.demand = {d.gpus * demand_scale, d.memory_gb * demand_scale};
      queue.push(tenant_name(t), std::move(item));
    }
  }
  return queue;
}

/// Progressive filling exactly as ApiServer::drain gates it: grant the
/// min-share tenant's head while it fits capacity x factor; stop when no
/// queued head fits.  Returns (tenant, job id) in grant order.
std::vector<std::pair<std::string, std::string>> fill(DrfQueue& queue,
                                                      double factor) {
  std::vector<std::pair<std::string, std::string>> grants;
  while (auto next = queue.pop_next(
             [&](const std::string&, const DrfQueue::Item& item) {
               return queue.total_usage().fits(item.demand, queue.capacity(),
                                               factor);
             })) {
    queue.charge(next->first, next->second.demand);
    grants.emplace_back(next->first, next->second.spec.id);
  }
  return grants;
}

std::uint64_t base_seed() {
  const char* pinned = std::getenv("GPUNION_INVARIANT_SEED");
  return pinned != nullptr ? std::strtoull(pinned, nullptr, 10) : 1;
}

// Dominant shares are ratios: a uniform change of units (double every
// demand and the capacity) must not change a single granting decision.
// Scale factors are powers of two so the scaling is exact in binary
// floating point — an arbitrary factor perturbs u/c in the last ulp and
// spuriously flips share ties.
TEST(DrfPropertyTest, ShareRatioInvarianceUnderDemandScaling) {
  const std::uint64_t base = base_seed();
  for (std::uint64_t seed = base; seed < base + 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    const Scenario s = random_scenario(rng);
    const double alpha = std::ldexp(1.0, static_cast<int>(rng.uniform_int(-2, 3)));
    DrfQueue honest = build_queue(s);
    DrfQueue scaled = build_queue(s, /*demand_scale=*/alpha,
                                  /*capacity_scale=*/alpha);
    EXPECT_EQ(fill(honest, s.factor), fill(scaled, s.factor));
  }
}

// Strategy-proofness: a tenant that uniformly inflates its demands (lies
// that every job is k-times bigger) never ends up with MORE granted jobs
// than it gets by asking honestly.
TEST(DrfPropertyTest, InflatingDemandNeverWinsMoreGrants) {
  const std::uint64_t base = base_seed();
  for (std::uint64_t seed = base; seed < base + 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    Scenario s = random_scenario(rng);
    const int liar = static_cast<int>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.tenants) - 1));
    const double inflation = rng.uniform(1.5, 4.0);

    DrfQueue honest_queue = build_queue(s);
    const auto honest = fill(honest_queue, s.factor);

    for (ResourceVector& d : s.demands[static_cast<std::size_t>(liar)]) {
      d.gpus *= inflation;
      d.memory_gb *= inflation;
    }
    DrfQueue lying_queue = build_queue(s);
    const auto lying = fill(lying_queue, s.factor);

    auto grants_of = [&](const auto& grants) {
      std::size_t n = 0;
      for (const auto& [tenant, id] : grants) {
        if (tenant == tenant_name(liar)) ++n;
      }
      return n;
    };
    EXPECT_LE(grants_of(lying), grants_of(honest))
        << tenant_name(liar) << " gained by inflating demands x"
        << inflation;
  }
}

// With one tenant there is nothing to balance: DRF must hand back the
// submission order unchanged, i.e. plain FIFO.
TEST(DrfPropertyTest, SingleTenantDegeneratesToFifo) {
  const std::uint64_t base = base_seed();
  for (std::uint64_t seed = base; seed < base + 100; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    DrfQueue queue({1e18, 1e18});
    std::vector<std::string> order;
    const int n = static_cast<int>(rng.uniform_int(1, 50));
    for (int j = 0; j < n; ++j) {
      DrfQueue::Item item;
      item.spec.id = "solo-" + std::to_string(j);
      item.demand = {static_cast<double>(rng.uniform_int(1, 4)),
                     static_cast<double>(rng.uniform_int(4, 40))};
      order.push_back(item.spec.id);
      queue.push("solo", std::move(item));
    }
    std::vector<std::string> popped;
    for (const auto& [tenant, id] : fill(queue, 1.0)) {
      EXPECT_EQ(tenant, "solo");
      popped.push_back(id);
    }
    EXPECT_EQ(popped, order);
  }
}

// Ties break by tenant name: two identical runs grant identically (the
// determinism the kDeterministic golden traces lean on).
TEST(DrfPropertyTest, GrantOrderIsDeterministic) {
  const std::uint64_t base = base_seed();
  for (std::uint64_t seed = base; seed < base + 25; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    const Scenario s = random_scenario(rng);
    DrfQueue a = build_queue(s);
    DrfQueue b = build_queue(s);
    EXPECT_EQ(fill(a, s.factor), fill(b, s.factor));
  }
}

// Bookkeeping safety: release never drives usage negative, and removing a
// queued job by id leaves the rest of the queue intact.
TEST(DrfPropertyTest, ChargeReleaseAndRemoveAreSafe) {
  DrfQueue queue({8, 64});
  queue.charge("a", {2, 16});
  queue.release("a", {5, 50});  // over-release clamps at zero
  EXPECT_EQ(queue.usage_of("a").gpus, 0.0);
  EXPECT_EQ(queue.usage_of("a").memory_gb, 0.0);

  for (int j = 0; j < 3; ++j) {
    DrfQueue::Item item;
    item.spec.id = "r-" + std::to_string(j);
    item.demand = {1, 8};
    queue.push("a", std::move(item));
  }
  EXPECT_FALSE(queue.remove("a", "r-9"));
  EXPECT_TRUE(queue.remove("a", "r-1"));
  EXPECT_FALSE(queue.remove("b", "r-0"));  // wrong tenant
  auto grants = fill(queue, 1.0);
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(grants[0].second, "r-0");
  EXPECT_EQ(grants[1].second, "r-2");
}

}  // namespace
}  // namespace gpunion::api
