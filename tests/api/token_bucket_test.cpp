// Token-bucket admission: regression coverage for the never-satisfiable
// request bug.  try_take used to compute a FINITE retry_after even when the
// requested token count exceeded the burst — the bucket refills at most to
// burst, so such a request can never succeed and the hint told the tenant
// to retry forever.  It must now come back kNeverSatisfiable, and the
// ApiServer must map it to a permanent rejection instead of kOverloaded.
#include "api/token_bucket.h"

#include <gtest/gtest.h>

#include "api/api_server.h"
#include "sim/environment.h"
#include "workload/profiles.h"

namespace gpunion::api {
namespace {

TEST(TokenBucketTest, TakesAndRefills) {
  TokenBucket bucket(10.0, 20.0);
  EXPECT_TRUE(bucket.try_take(0.0, 20.0));
  util::Duration retry = 0;
  EXPECT_FALSE(bucket.try_take(0.0, 5.0, &retry));
  EXPECT_DOUBLE_EQ(retry, 0.5);  // 5 tokens at 10/s
  EXPECT_TRUE(bucket.try_take(0.5, 5.0));
}

TEST(TokenBucketTest, OverBurstRequestIsNeverSatisfiable) {
  TokenBucket bucket(10.0, 20.0);
  EXPECT_FALSE(bucket.satisfiable(25.0));
  EXPECT_TRUE(bucket.satisfiable(20.0));
  util::Duration retry = 0;
  // Regression: the old hint was (25 - 20) / 10 = 0.5 s — a lie.  Waiting
  // any amount of time never yields more than `burst` tokens.
  EXPECT_FALSE(bucket.try_take(0.0, 25.0, &retry));
  EXPECT_GE(retry, TokenBucket::kNeverSatisfiable);
  // The bucket itself is untouched: a satisfiable request still succeeds.
  EXPECT_TRUE(bucket.try_take(0.0, 20.0));
}

TEST(TokenBucketTest, ZeroRateDeficitIsNeverSatisfiable) {
  TokenBucket bucket(0.0, 10.0);
  EXPECT_TRUE(bucket.try_take(0.0, 10.0));
  util::Duration retry = 0;
  EXPECT_FALSE(bucket.try_take(100.0, 1.0, &retry));
  EXPECT_GE(retry, TokenBucket::kNeverSatisfiable);
}

TEST(TokenBucketTest, ApiServerMapsNeverSatisfiableToPermanentReject) {
  sim::Environment env(1);
  ApiConfig config;
  config.enabled = true;
  // Burst below the per-submit cost of 1 token: NO submit can ever pass
  // the bucket, so every one must be a permanent kRejected — not a
  // kOverloaded that invites infinite retries.
  config.admission_rate = 100.0;
  config.admission_burst = 0.25;
  ApiServer server(env, config);
  server.set_dispatch([](workload::JobSpec, double, obs::TraceContext) {
    return util::Status();
  });
  server.start();
  const auto result = server.submit(
      "t0", workload::make_interactive_session("sess-0", 1.0, "t0", 0.0));
  EXPECT_EQ(result.outcome, AdmitOutcome::kRejected);
  EXPECT_EQ(result.status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.tenant_counters("t0").rejected_invalid, 1u);
  EXPECT_EQ(server.tenant_counters("t0").rejected_overloaded, 0u);
}

}  // namespace
}  // namespace gpunion::api
