// Regression tests for the withdraw-then-resubmit id-reuse hole.
//
// Coordinator::withdraw hands a pending job to the federation layer and
// removes it from the local books entirely — which used to make the id
// free for an immediate resubmit.  A client (or a request-plane retry)
// reusing the id while the forward was still in WAN flight would collide
// with return_job_home / the transfer ack and silently lose one of the two
// jobs.  The fix: the gateway reserve_id()s every withdrawn id for as long
// as its forward is outstanding, and Coordinator::submit refuses reserved
// ids with kFailedPrecondition.  These tests pin the guard at the unit
// level, across a control-plane crash, and end-to-end through a live
// two-region forward.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gpunion/federated_platform.h"
#include "gpunion/platform.h"
#include "workload/profiles.h"

namespace gpunion {
namespace {

CampusConfig small_campus(const std::string& prefix, int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back(
        {hw::workstation_3090(prefix + "-ws-" + std::to_string(i)),
         "group-" + prefix});
  }
  config.storage.push_back({"nas-" + prefix, 512ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  return config;
}

workload::JobSpec training(const std::string& id, const std::string& group,
                           double seconds, util::SimTime at) {
  auto job = workload::make_training_job(id, workload::cnn_small(),
                                         seconds / 3600.0, group, at);
  job.checkpoint_interval = 60.0;
  return job;
}

TEST(IdReuseTest, ReservedIdRefusesResubmitUntilReleased) {
  sim::Environment env(3);
  Platform platform(env, small_campus("solo", 2));
  platform.start();
  env.run_until(5.0);
  sched::Coordinator& coordinator = platform.coordinator();

  ASSERT_TRUE(
      coordinator.submit(training("job-x", "group-solo", 300.0, env.now()))
          .is_ok());
  // Withdraw before dispatch settles the job anywhere: the books forget it.
  auto withdrawn = coordinator.withdraw("job-x");
  ASSERT_TRUE(withdrawn.ok());
  EXPECT_EQ(coordinator.job("job-x"), nullptr);

  // What the gateway does for the duration of the forward:
  coordinator.reserve_id("job-x");
  EXPECT_TRUE(coordinator.id_reserved("job-x"));
  auto refused =
      coordinator.submit(training("job-x", "group-solo", 300.0, env.now()));
  ASSERT_FALSE(refused.is_ok());
  EXPECT_NE(refused.message().find("federation flight"), std::string::npos)
      << refused.message();

  // Released (forward delivered or returned): the id is usable again.
  coordinator.release_id("job-x");
  EXPECT_FALSE(coordinator.id_reserved("job-x"));
  EXPECT_TRUE(
      coordinator.submit(training("job-x", "group-solo", 300.0, env.now()))
          .is_ok());
}

TEST(IdReuseTest, CrashClearsReservations) {
  sim::Environment env(5);
  Platform platform(env, small_campus("crashy", 2));
  platform.register_crash_points(2.0);
  platform.start();
  env.run_until(5.0);
  sched::Coordinator& coordinator = platform.coordinator();

  coordinator.reserve_id("ghost-job");
  ASSERT_TRUE(coordinator.id_reserved("ghost-job"));

  // Reservations are in-memory state: a crash wipes them, and recovery
  // only re-reserves ids with durable forward rows (none here).
  platform.crash_control_plane(2.0);
  env.run_until(env.now() + 30.0);
  EXPECT_FALSE(platform.control_plane_crashed());
  EXPECT_FALSE(coordinator.id_reserved("ghost-job"));
  EXPECT_TRUE(coordinator
                  .submit(training("ghost-job", "group-crashy", 60.0,
                                   env.now()))
                  .is_ok());
}

// End-to-end: while a real two-region forward is in flight the withdrawn
// id must refuse reuse, and once the federation settles every reservation
// must be gone (released by the transfer ack or return_job_home).
TEST(IdReuseTest, ForwardInFlightGuardsIdEndToEnd) {
  sim::Environment env(11);
  FederationConfig config;
  config.topology = federation::FederationTopology::kHub;
  federation::RegionPolicy policy;
  policy.digest_interval = 5.0;
  policy.forward_after = 10.0;
  policy.forward_timeout = 10.0;
  policy.forward_retry_backoff = 30.0;
  config.regions.push_back(RegionConfig{"alpha", small_campus("alpha", 1),
                                        policy});
  config.regions.push_back(RegionConfig{"beta", small_campus("beta", 3),
                                        policy});
  // A slow intercontinental link keeps each forward in WAN flight for a
  // wide, deterministic window the polling loop below cannot miss.
  config.links.push_back({"alpha", "beta", 2.0});
  FederatedPlatform fed(env, config);
  fed.start();
  env.run_until(5.0);

  // Overflow a 1-GPU campus so the gateway must forward.
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back("reuse-" + std::to_string(i));
    ASSERT_TRUE(fed.region("alpha")
                    .coordinator()
                    .submit(training(ids.back(), "group-alpha", 120.0,
                                     env.now()))
                    .is_ok());
  }

  // Step until a withdrawn id is reserved (forward in WAN flight).
  sched::Coordinator& alpha = fed.region("alpha").coordinator();
  std::string in_flight;
  while (env.now() < 300.0 && in_flight.empty()) {
    env.run_until(env.now() + 0.25);
    for (const auto& id : ids) {
      if (alpha.id_reserved(id)) {
        in_flight = id;
        break;
      }
    }
  }
  ASSERT_FALSE(in_flight.empty()) << "no forward ever went into flight";
  EXPECT_EQ(alpha.job(in_flight), nullptr) << "withdrawn id still on books";

  // The regression: without the reservation this submit would succeed and
  // collide with the in-flight transfer.
  auto refused =
      alpha.submit(training(in_flight, "group-alpha", 120.0, env.now()));
  ASSERT_FALSE(refused.is_ok());
  EXPECT_NE(refused.message().find("federation flight"), std::string::npos)
      << refused.message();

  // Let the federation settle: all jobs complete somewhere, and every
  // reservation was released by the ack / return path.
  env.run_until(900.0);
  EXPECT_EQ(fed.region("alpha").coordinator().stats().jobs_completed +
                fed.region("beta").coordinator().stats().jobs_completed,
            3);
  for (const auto& id : ids) {
    EXPECT_FALSE(alpha.id_reserved(id)) << id << " reservation leaked";
  }
  EXPECT_EQ(fed.gateway("beta").remote_jobs_active(), 0);
}

}  // namespace
}  // namespace gpunion
