// Randomized multi-tenant harness for the request plane (PR 4/PR 5 style).
//
// A heavy-tailed tenant population churns submit / batch-submit / status /
// cancel / provider-churn / control-plane-crash against an API-fronted
// campus, and after every round (drained to quiescence) the harness asserts
// the cross-cutting request-plane invariants:
//
//   * per-tenant conservation — accepted == dispatched + queued +
//     quota-dropped + cancelled + core-rejected, exactly, per tenant and
//     in aggregate;
//   * quota enforcement — no tenant ever exceeds max_in_flight, its queue
//     bound, or its GPU-seconds budget;
//   * bounded core working set — total in-flight demand stays within
//     capacity x core_load_factor;
//   * blocked-for-cause — a tenant still backlogged after a quiescent
//     drain is quota-blocked, budget-starved or capacity-blocked; queues
//     never hold for no reason.
//
// DRF share balance is pinned separately (DrfSharesBalanceUnderFlood): it
// floods the plane from many tenants with long jobs (no releases during
// the window) where progressive filling's within-one-job bound is exact.
// Backpressure monotonicity gets its own deterministic load ladder.
//
// Seeds reproduce via GPUNION_INVARIANT_SEED exactly like the coordinator
// and federation harnesses; CI runs 3 fixed seeds + $RANDOM.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/api_server.h"
#include "gpunion/platform.h"
#include "util/rng.h"
#include "workload/profiles.h"
#include "workload/provider_behavior.h"

namespace gpunion {
namespace {

constexpr int kNodes = 6;
constexpr int kTenants = 12;

std::string tenant_name(int index) {
  return "t" + std::string(index < 10 ? "0" : "") + std::to_string(index);
}

CampusConfig api_campus() {
  CampusConfig config;
  for (int i = 0; i < kNodes; ++i) {
    config.nodes.push_back({hw::workstation_3090("api-" + std::to_string(i)),
                            "group-" + std::to_string(i % 2)});
  }
  config.storage.push_back({"nas-api", 64ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  config.db.shard_count = 4;
  config.db.write_behind = true;
  config.db.flush_threshold = 16;
  config.db.flush_interval = 5.0;

  config.api.enabled = true;
  // Tight enough that every reject path fires during a campaign.
  config.api.admission_rate = 40.0;
  config.api.admission_burst = 12.0;
  config.api.drain_interval = 0.5;
  config.api.drain_batch = 8;
  config.api.core_load_factor = 2.0;
  config.api.default_quota.max_in_flight = 4;
  config.api.default_quota.max_queued = 6;
  // Tenant personalities: a weighted heavy hitter, a budget-metered lab, a
  // one-at-a-time guest, a tiny-queue walk-in.
  config.api.tenant_quotas[tenant_name(0)].weight = 2.0;
  config.api.tenant_quotas[tenant_name(0)].max_in_flight = 6;
  config.api.tenant_quotas[tenant_name(0)].max_queued = 6;
  config.api.tenant_quotas[tenant_name(1)].gpu_seconds_budget = 150.0;
  config.api.tenant_quotas[tenant_name(1)].max_queued = 6;
  config.api.tenant_quotas[tenant_name(2)].max_in_flight = 1;
  config.api.tenant_quotas[tenant_name(2)].max_queued = 6;
  config.api.tenant_quotas[tenant_name(3)].max_queued = 2;
  return config;
}

/// Heavy-tailed tenant draw: cubing the uniform skews mass onto the head
/// tenants (a discrete Zipf-ish popularity curve, deterministic per seed).
int draw_tenant(util::Rng& rng) {
  const double u = rng.uniform(0.0, 1.0);
  return std::min(kTenants - 1, static_cast<int>(u * u * u * kTenants));
}

/// Cross-cutting request-plane invariants; assertable at any quiescent
/// point (and most of them at ANY point — the transitions are atomic).
void check_api_invariants(Platform& platform) {
  api::ApiServer& api = platform.api();
  const api::ApiConfig& config = api.config();

  api::TenantCounters rollup;
  for (const std::string& tenant : api.tenants()) {
    const api::TenantCounters& c = api.tenant_counters(tenant);
    const api::TenantQuota& quota = api.quota_of(tenant);
    const std::size_t queued = api.queued(tenant);
    const int in_flight = api.in_flight(tenant);

    // Conservation: everything accepted is exactly one of dispatched,
    // still queued, dropped at the quota gate, cancelled while queued, or
    // refused by the core.
    EXPECT_EQ(c.accepted, c.dispatched + queued + c.quota_dropped +
                              c.cancelled_queued + c.dispatch_rejected)
        << tenant << ": accepted " << c.accepted << " != dispatched "
        << c.dispatched << " + queued " << queued << " + quota_dropped "
        << c.quota_dropped << " + cancelled " << c.cancelled_queued
        << " + core_rejected " << c.dispatch_rejected;
    // Every submit got exactly one verdict.
    EXPECT_EQ(c.submitted, c.accepted + c.rejected_overloaded +
                               c.rejected_quota + c.rejected_invalid)
        << tenant;

    // Quotas hold, always.
    EXPECT_LE(in_flight, quota.max_in_flight) << tenant;
    EXPECT_LE(queued, quota.max_queued) << tenant;
    EXPECT_LE(c.gpu_seconds_charged, quota.gpu_seconds_budget + 1e-6)
        << tenant;

    rollup.submitted += c.submitted;
    rollup.accepted += c.accepted;
    rollup.dispatched += c.dispatched;
    rollup.quota_dropped += c.quota_dropped;
    rollup.cancelled_queued += c.cancelled_queued;
    rollup.dispatch_rejected += c.dispatch_rejected;
  }
  const api::TenantCounters& totals = api.stats().totals;
  EXPECT_EQ(totals.submitted, rollup.submitted);
  EXPECT_EQ(totals.accepted, rollup.accepted);
  EXPECT_EQ(totals.dispatched, rollup.dispatched);
  EXPECT_EQ(totals.accepted,
            totals.dispatched + api.total_queued() + totals.quota_dropped +
                totals.cancelled_queued + totals.dispatch_rejected);

  // Bounded core working set.
  const api::ResourceVector usage = api.drf_queue().total_usage();
  const api::ResourceVector& capacity = api.drf_queue().capacity();
  EXPECT_LE(usage.gpus, capacity.gpus * config.core_load_factor + 1e-9);
  EXPECT_LE(usage.memory_gb,
            capacity.memory_gb * config.core_load_factor + 1e-9);
}

/// After a quiescent drain every backlogged tenant must be blocked for a
/// reason: queues never hold jobs the core could take.
void check_blocked_for_cause(Platform& platform) {
  if (platform.control_plane_crashed()) return;  // drains are suspended
  api::ApiServer& api = platform.api();
  const double factor = api.config().core_load_factor;
  const api::DrfQueue& queue = api.drf_queue();
  const api::ResourceVector usage = queue.total_usage();
  for (const std::string& tenant : queue.backlogged()) {
    const api::TenantQuota& quota = api.quota_of(tenant);
    const bool quota_blocked = api.in_flight(tenant) >= quota.max_in_flight;
    // Exactly the drain gate: the head item's demand no longer fits the
    // bounded working set.
    const bool capacity_blocked = !usage.fits(queue.head_demand(tenant),
                                              queue.capacity(), factor);
    EXPECT_TRUE(quota_blocked || capacity_blocked)
        << tenant << " backlogged with " << api.queued(tenant)
        << " queued, in_flight " << api.in_flight(tenant) << "/"
        << quota.max_in_flight << ", usage " << usage.gpus << "/"
        << queue.capacity().gpus * factor << " GPUs";
  }
}

struct SweepCoverage {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t quota_dropped = 0;
  std::uint64_t cancelled_queued = 0;
  std::uint64_t batch_submits = 0;
  std::uint64_t batch_status = 0;
  std::uint64_t group_commits = 0;
  std::uint64_t interruptions = 0;
  std::uint64_t crash_recoveries = 0;
  std::uint64_t api_spans = 0;
};

void run_one_seed(std::uint64_t seed, int rounds,
                  SweepCoverage* coverage = nullptr) {
  SCOPED_TRACE("GPUNION_INVARIANT_SEED=" + std::to_string(seed));
  util::Rng rng(seed);
  sim::Environment env(seed);
  Platform platform(env, api_campus());
  platform.start();
  env.run_until(5.0);

  api::ApiServer& api = platform.api();
  int next_job = 0;
  std::vector<std::pair<std::string, std::string>> submitted;  // tenant, id

  auto make_job = [&](const std::string& id) {
    auto job = workload::make_training_job(
        id, workload::cnn_small(), rng.uniform(0.005, 0.05),
        "group-" + std::to_string(rng.uniform_int(0, 1)), env.now());
    job.checkpoint_interval = 30.0;
    return job;
  };

  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const int burst = static_cast<int>(rng.uniform_int(2, 8));
    for (int b = 0; b < burst; ++b) {
      const std::string tenant = tenant_name(draw_tenant(rng));
      switch (rng.uniform_int(0, 9)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // single submit (sometimes an interactive session)
          const std::string id = "api-job-" + std::to_string(next_job++);
          api::SubmitResult result;
          if (rng.bernoulli(0.2)) {
            result = api.submit(tenant,
                                workload::make_interactive_session(
                                    id, rng.uniform(0.005, 0.02),
                                    "group-0", env.now()));
          } else {
            result = api.submit(tenant, make_job(id));
          }
          if (result.accepted()) submitted.emplace_back(tenant, id);
          if (result.outcome == api::AdmitOutcome::kOverloaded) {
            EXPECT_GT(result.retry_after, 0.0)
                << "kOverloaded must carry a retry-after hint";
          }
          break;
        }
        case 4: {  // batched submit burst
          std::vector<workload::JobSpec> jobs;
          const int n = static_cast<int>(rng.uniform_int(2, 6));
          for (int j = 0; j < n; ++j) {
            jobs.push_back(
                make_job("api-job-" + std::to_string(next_job++)));
          }
          std::vector<std::string> ids;
          for (const auto& job : jobs) ids.push_back(job.id);
          auto results = api.submit_batch(tenant, std::move(jobs));
          for (std::size_t j = 0; j < results.size(); ++j) {
            if (results[j].accepted()) submitted.emplace_back(tenant, ids[j]);
          }
          break;
        }
        case 5: {  // duplicate-id submit must be refused cleanly
          if (submitted.empty()) break;
          const auto& victim = submitted[static_cast<std::size_t>(
              rng.uniform_int(0,
                              static_cast<std::int64_t>(submitted.size() - 1)))];
          auto result = api.submit(victim.first, make_job(victim.second));
          EXPECT_EQ(result.outcome, api::AdmitOutcome::kRejected)
              << victim.second;
          break;
        }
        case 6: {  // cancel (queued or dispatched), right tenant or wrong
          if (submitted.empty()) break;
          const auto& victim = submitted[static_cast<std::size_t>(
              rng.uniform_int(0,
                              static_cast<std::int64_t>(submitted.size() - 1)))];
          if (rng.bernoulli(0.2)) {
            // Cross-tenant cancel must never touch another tenant's job.
            EXPECT_FALSE(api.cancel("intruder", victim.second).is_ok());
          } else {
            (void)api.cancel(victim.first, victim.second);
          }
          break;
        }
        case 7: {  // status probes (single + batch)
          if (submitted.empty()) break;
          std::vector<std::string> ids;
          for (int probes = static_cast<int>(rng.uniform_int(1, 5));
               probes > 0; --probes) {
            ids.push_back(
                submitted[static_cast<std::size_t>(rng.uniform_int(
                              0, static_cast<std::int64_t>(submitted.size() -
                                                           1)))]
                    .second);
          }
          const std::string owner = api.status(ids.front(), "nope").phase;
          EXPECT_EQ(owner, "unknown");  // wrong-tenant probe leaks nothing
          for (const auto& view :
               api.status_batch(submitted.back().first, ids)) {
            if (view.known) EXPECT_FALSE(view.phase.empty());
          }
          break;
        }
        case 8: {  // provider churn under the API's feet
          workload::Interruption event;
          event.at = env.now();
          event.machine_id = Platform::machine_id_for(
              "api-" + std::to_string(rng.uniform_int(0, kNodes - 1)));
          event.kind = rng.bernoulli(0.5) ? agent::DepartureKind::kScheduled
                                          : agent::DepartureKind::kEmergency;
          event.downtime = rng.uniform(10.0, 40.0);
          platform.inject_interruption(event);
          break;
        }
        default: {  // control-plane crash: the API tier keeps queueing
          if (!platform.control_plane_crashed()) {
            platform.crash_control_plane(rng.uniform(0.5, 2.5));
          }
          break;
        }
      }
    }
    env.run_until(env.now() + rng.uniform(3.0, 20.0));
    api.drain_to_quiescence();
    platform.database().flush_ledger();
    check_api_invariants(platform);
    check_blocked_for_cause(platform);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Let in-flight work settle, then re-assert everything one last time.
  env.run_until(env.now() + 400.0);
  api.drain_to_quiescence();
  platform.database().flush_ledger();
  check_api_invariants(platform);
  check_blocked_for_cause(platform);

  if (coverage != nullptr) {
    const api::ApiStats& stats = api.stats();
    coverage->submitted += stats.totals.submitted;
    coverage->accepted += stats.totals.accepted;
    coverage->dispatched += stats.totals.dispatched;
    coverage->completed += stats.totals.completed;
    coverage->rejected_overloaded += stats.totals.rejected_overloaded;
    coverage->rejected_quota += stats.totals.rejected_quota;
    coverage->quota_dropped += stats.totals.quota_dropped;
    coverage->cancelled_queued += stats.totals.cancelled_queued;
    coverage->batch_submits += stats.batch_submits;
    coverage->batch_status += stats.batch_status;
    coverage->group_commits += stats.group_commits;
    coverage->interruptions += platform.coordinator().stats().interruptions;
    coverage->crash_recoveries += static_cast<std::uint64_t>(
        platform.coordinator().recovery_stats().recoveries);
    for (const auto& span : platform.tracer().snapshot()) {
      if (span.stage == obs::stage::kApiAdmit ||
          span.stage == obs::stage::kApiQueue) {
        ++coverage->api_spans;
      }
    }
  }
}

TEST(ApiInvariantsTest, RandomizedMultiTenantCampaign) {
  const char* pinned = std::getenv("GPUNION_INVARIANT_SEED");
  SweepCoverage coverage;
  int campaigns = 0;
  if (pinned != nullptr) {
    const std::uint64_t base = std::strtoull(pinned, nullptr, 10);
    for (std::uint64_t seed = base; seed < base + 25; ++seed) {
      run_one_seed(seed, /*rounds=*/8, &coverage);
      ++campaigns;
      if (::testing::Test::HasFatalFailure()) return;
    }
  } else {
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      run_one_seed(seed, /*rounds=*/8, &coverage);
      ++campaigns;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // Coverage floors: a green sweep must have exercised every guarded path.
  const auto n = static_cast<std::uint64_t>(campaigns);
  EXPECT_GT(coverage.submitted, 10 * n);
  EXPECT_GT(coverage.accepted, 5 * n);
  EXPECT_GT(coverage.dispatched, 5 * n);
  EXPECT_GT(coverage.completed, n);
  EXPECT_GT(coverage.rejected_overloaded, n) << "backpressure never fired";
  EXPECT_GT(coverage.rejected_quota + coverage.quota_dropped, n / 4)
      << "GPU-seconds budget gate never fired";
  EXPECT_GT(coverage.cancelled_queued, n / 4);
  EXPECT_GT(coverage.batch_submits, n / 2);
  EXPECT_GT(coverage.batch_status, n / 2);
  EXPECT_GT(coverage.group_commits, n) << "drains never amortized a commit";
  EXPECT_GT(coverage.interruptions, n / 2);
  EXPECT_GT(coverage.crash_recoveries, n / 4)
      << "the API-over-crashed-core path never ran";
  EXPECT_GT(coverage.api_spans, 10 * n) << "tenant-edge trace roots missing";
}

// DRF dominant shares stay within one job of each other while every tenant
// is continuously backlogged and nothing releases — the window where the
// progressive-filling bound is exact.  Long jobs keep usage monotone.
TEST(ApiInvariantsTest, DrfSharesBalanceUnderFlood) {
  sim::Environment env(7);
  CampusConfig config = api_campus();
  config.api.admission_rate = 1e6;  // isolate DRF from the rate limiter
  config.api.admission_burst = 1e6;
  config.api.default_quota.max_in_flight = 64;
  config.api.default_quota.max_queued = 64;
  config.api.tenant_quotas.clear();
  config.api.tenant_quotas[tenant_name(0)].weight = 2.0;
  config.api.tenant_quotas[tenant_name(0)].max_in_flight = 64;
  config.api.tenant_quotas[tenant_name(0)].max_queued = 64;
  Platform platform(env, config);
  platform.start();
  env.run_until(5.0);

  api::ApiServer& api = platform.api();
  for (int t = 0; t < 6; ++t) {
    for (int j = 0; j < 24; ++j) {
      auto job = workload::make_training_job(
          "flood-" + std::to_string(t) + "-" + std::to_string(j),
          workload::cnn_small(), /*hours=*/6.0, "group-0", env.now());
      ASSERT_TRUE(api.submit(tenant_name(t), std::move(job)).accepted());
    }
  }
  api.drain_to_quiescence();

  // Demand >> capacity x factor, so every tenant is still backlogged and
  // the only blocker is capacity: progressive filling must have balanced
  // the weighted dominant shares to within one job's share.
  const api::DrfQueue& queue = api.drf_queue();
  ASSERT_EQ(queue.backlogged().size(), 6u);
  const double job_share = 1.0 / static_cast<double>(kNodes);
  double min_share = 1e18;
  double max_share = 0;
  for (int t = 0; t < 6; ++t) {
    const double share = api.dominant_share_of(tenant_name(t));
    min_share = std::min(min_share, share);
    max_share = std::max(max_share, share);
  }
  EXPECT_LE(max_share - min_share, job_share + 1e-9)
      << "DRF drifted: weighted dominant shares spread past one job";
  // The weighted tenant's RAW usage is ahead of everyone else's.
  const double weighted_usage = queue.usage_of(tenant_name(0)).gpus;
  for (int t = 1; t < 6; ++t) {
    EXPECT_GE(weighted_usage + 1e-9, queue.usage_of(tenant_name(t)).gpus);
  }
}

// Backpressure is monotone in offered load: the identical open-loop
// schedule at 1x / 2x / 4x intensity never rejects less at higher load,
// and queue depth stays bounded throughout.
TEST(ApiInvariantsTest, BackpressureMonotoneInLoad) {
  auto offered_run = [](int multiplier) {
    sim::Environment env(11);
    CampusConfig config = api_campus();
    Platform platform(env, config);
    platform.start();
    env.run_until(5.0);
    api::ApiServer& api = platform.api();
    util::Rng rng(99);
    int next = 0;
    for (int tick = 0; tick < 60; ++tick) {
      for (int i = 0; i < multiplier; ++i) {
        const std::string tenant = tenant_name(draw_tenant(rng));
        auto job = workload::make_training_job(
            "load-" + std::to_string(next++), workload::cnn_small(),
            rng.uniform(0.01, 0.05), "group-0", env.now());
        (void)api.submit(tenant, std::move(job));
      }
      env.run_until(env.now() + 0.25);
    }
    const api::ApiStats& stats = api.stats();
    // Bounded backlog: the whole point of rejecting with retry-after.
    EXPECT_LE(stats.max_tenant_queued,
              config.api.default_quota.max_queued);
    return stats.totals.rejected_overloaded;
  };
  const auto r1 = offered_run(1);
  const auto r2 = offered_run(2);
  const auto r4 = offered_run(4);
  EXPECT_LE(r1, r2) << "rejections fell when load doubled";
  EXPECT_LE(r2, r4) << "rejections fell when load doubled again";
  EXPECT_GT(r4, r1) << "4x overload never triggered extra backpressure";
}

}  // namespace
}  // namespace gpunion
