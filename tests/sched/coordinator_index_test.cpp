// Consistency of the coordinator's O(active) bookkeeping: the per-node
// assignment index, the displaced-from index, the terminal-record archive,
// and the operational stats that must keep counting archived records.
#include <gtest/gtest.h>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "sched/coordinator.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

class CoordinatorIndexTest : public ::testing::Test {
 protected:
  CoordinatorIndexTest() : env_(7), net_(env_, {}) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(registry_
                    .push(container::make_image("jupyter-dl", "latest",
                                                "nvidia/cuda:12.1-runtime",
                                                8ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
    net_.register_endpoint("nas", [this](net::Message&& msg) {
      if (msg.kind != agent::kRestoreRequest) return;
      const auto& request =
          std::any_cast<const agent::RestoreRequest&>(msg.payload);
      net::Message data;
      data.from = "nas";
      data.to = request.requester;
      data.kind = agent::kRestoreData;
      data.traffic_class = net::TrafficClass::kMigration;
      data.size_bytes = std::max<std::uint64_t>(1, request.bytes);
      data.payload = agent::RestoreData{request.job_id};
      ASSERT_TRUE(net_.send(std::move(data)).is_ok());
    });
  }

  void make_coordinator(CoordinatorConfig config = {}) {
    coordinator_ =
        std::make_unique<Coordinator>(env_, net_, database_, store_, config);
    coordinator_->start();
  }

  agent::ProviderAgent& add_agent(const std::string& hostname) {
    nodes_.push_back(
        std::make_unique<hw::NodeModel>(hw::workstation_3090(hostname)));
    agent::AgentConfig config;
    config.owner_group = "vision";
    config.enable_telemetry = false;
    agents_.push_back(std::make_unique<agent::ProviderAgent>(
        env_, net_, *nodes_.back(), registry_, store_, config));
    agents_.back()->join();
    env_.run_until(env_.now() + 1.0);
    return *agents_.back();
  }

  workload::JobSpec training_job(const std::string& id, double hours = 1.0) {
    return workload::make_training_job(id, workload::cnn_small(), hours,
                                       "nlp", env_.now());
  }

  /// Every live assignment (dispatching/running record with a node) must
  /// appear in jobs_on() exactly where record.node says, and vice versa.
  void expect_index_consistent() {
    for (const auto& [job_id, record] : coordinator_->jobs()) {
      if (!record.node.empty()) {
        EXPECT_TRUE(coordinator_->jobs_on(record.node).contains(job_id))
            << job_id << " missing from index of " << record.node;
      }
      if (!record.displaced_from.empty()) {
        EXPECT_TRUE(coordinator_->displaced_from(record.displaced_from)
                        .contains(job_id))
            << job_id << " missing from displaced index of "
            << record.displaced_from;
      }
    }
    for (const auto& provider : agents_) {
      for (const auto& job_id :
           coordinator_->jobs_on(provider->machine_id())) {
        const JobRecord* record = coordinator_->job(job_id);
        ASSERT_NE(record, nullptr);
        EXPECT_EQ(record->node, provider->machine_id());
        // Terminal records leave the index on retirement; the only
        // terminal phase allowed here is a cancel awaiting its ack.
        EXPECT_TRUE(!job_phase_terminal(record->phase) ||
                    record->awaiting_dispatch_settle)
            << job_id << " terminal but still indexed";
      }
    }
  }

  sim::Environment env_;
  net::SimNetwork net_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
};

TEST_F(CoordinatorIndexTest, DispatchAckCompleteMaintainIndex) {
  make_coordinator();
  auto& provider = add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.25)).is_ok());
  env_.run_until(env_.now() + 30.0);
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kRunning);
  EXPECT_TRUE(coordinator_->jobs_on(provider.machine_id()).contains("job-1"));
  expect_index_consistent();

  env_.run_until(env_.now() + util::hours(0.35));
  // Completed: retired into the archive, gone from the live map and index.
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kCompleted);
  EXPECT_FALSE(coordinator_->jobs().contains("job-1"));
  EXPECT_TRUE(coordinator_->archive().contains("job-1"));
  EXPECT_TRUE(coordinator_->jobs_on(provider.machine_id()).empty());
  expect_index_consistent();
}

TEST_F(CoordinatorIndexTest, ArchivedPointerStaysValidAcrossRetirement) {
  make_coordinator();
  add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.25)).is_ok());
  env_.run_until(env_.now() + 30.0);
  const JobRecord* record = coordinator_->job("job-1");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  env_.run_until(env_.now() + util::hours(0.35));
  // The pointer taken while live still reads the terminal outcome: the map
  // node was handed over to the archive, not reallocated.
  EXPECT_EQ(record->phase, JobPhase::kCompleted);
  EXPECT_EQ(coordinator_->job("job-1"), record);
}

TEST_F(CoordinatorIndexTest, ResubmitOfArchivedJobIdRejected) {
  make_coordinator();
  add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.1)).is_ok());
  env_.run_until(env_.now() + util::hours(0.2));
  ASSERT_TRUE(coordinator_->archive().contains("job-1"));
  EXPECT_EQ(coordinator_->submit(training_job("job-1")).code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(coordinator_->cancel("job-1").code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(CoordinatorIndexTest, CancelPathsRetireRecords) {
  make_coordinator();
  add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("running", 1.0)).is_ok());
  ASSERT_TRUE(coordinator_->submit(training_job("queued", 1.0)).is_ok());
  env_.run_until(env_.now() + 30.0);
  ASSERT_TRUE(coordinator_->cancel("queued").is_ok());   // pending
  ASSERT_TRUE(coordinator_->cancel("running").is_ok());  // running
  env_.run_until(env_.now() + 60.0);
  EXPECT_TRUE(coordinator_->archive().contains("queued"));
  EXPECT_TRUE(coordinator_->archive().contains("running"));
  EXPECT_EQ(coordinator_->job("queued")->phase, JobPhase::kCancelled);
  EXPECT_EQ(coordinator_->job("running")->phase, JobPhase::kCancelled);
  expect_index_consistent();
  // In-flight accounting settled: nothing left that discounts capacity.
  const NodeInfo* node =
      coordinator_->directory().find(agents_[0]->machine_id());
  ASSERT_NE(node, nullptr);
  env_.run_until(env_.now() + 10.0);
  EXPECT_EQ(node->free_gpus, 1);
}

TEST_F(CoordinatorIndexTest, MigrationMovesIndexEntryAndTracksDisplacement) {
  make_coordinator();
  auto& doomed = add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 2.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(15));
  ASSERT_TRUE(coordinator_->jobs_on(doomed.machine_id()).contains("job-1"));

  add_agent("ws-1");
  doomed.depart_emergency();
  env_.run_until(env_.now() + 60.0);

  const JobRecord* record = coordinator_->job("job-1");
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_EQ(record->node, agents_[1]->machine_id());
  // Index entry moved from the lost node to the refuge.
  EXPECT_FALSE(coordinator_->jobs_on(doomed.machine_id()).contains("job-1"));
  EXPECT_TRUE(
      coordinator_->jobs_on(agents_[1]->machine_id()).contains("job-1"));
  // Displacement indexed for the migrate-back path.
  EXPECT_TRUE(
      coordinator_->displaced_from(doomed.machine_id()).contains("job-1"));
  expect_index_consistent();
}

TEST_F(CoordinatorIndexTest, MigrateBackClearsDisplacedIndex) {
  make_coordinator();
  auto& flaky = add_agent("ws-0");
  add_agent("ws-1");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 6.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(15));
  const std::string origin = coordinator_->job("job-1")->node;
  auto* origin_agent = origin == flaky.machine_id() ? &flaky : agents_[1].get();

  coordinator_->set_cause_hint(origin_agent->machine_id(),
                               agent::DepartureKind::kTemporary);
  origin_agent->depart_emergency();
  env_.run_until(env_.now() + util::minutes(5));
  EXPECT_TRUE(coordinator_->displaced_from(origin).contains("job-1"));

  origin_agent->rejoin();
  env_.run_until(env_.now() + util::minutes(5));
  const JobRecord* record = coordinator_->job("job-1");
  EXPECT_EQ(record->node, origin);
  EXPECT_EQ(record->migrate_backs, 1);
  // Back home: the displacement entry is gone.
  EXPECT_TRUE(coordinator_->displaced_from(origin).empty());
  expect_index_consistent();
}

TEST_F(CoordinatorIndexTest, SessionDenialAndDisruptionArchive) {
  CoordinatorConfig config;
  config.session_patience = 300.0;
  make_coordinator(config);
  // No capacity: the session times out in queue.
  workload::JobSpec denied = workload::make_interactive_session(
      "sess-denied", 1.0, "theory", env_.now());
  ASSERT_TRUE(coordinator_->submit(std::move(denied)).is_ok());
  env_.run_until(env_.now() + 301.0);
  EXPECT_TRUE(coordinator_->archive().contains("sess-denied"));
  EXPECT_EQ(coordinator_->job("sess-denied")->phase, JobPhase::kDenied);

  // A running session killed by churn disrupts terminally.
  auto& doomed = add_agent("ws-0");
  workload::JobSpec session = workload::make_interactive_session(
      "sess-live", 2.0, "theory", env_.now());
  ASSERT_TRUE(coordinator_->submit(std::move(session)).is_ok());
  env_.run_until(env_.now() + util::minutes(10));
  ASSERT_EQ(coordinator_->job("sess-live")->phase, JobPhase::kRunning);
  doomed.depart_emergency();
  env_.run_until(env_.now() + util::minutes(2));
  EXPECT_EQ(coordinator_->job("sess-live")->phase,
            JobPhase::kSessionDisrupted);
  EXPECT_TRUE(coordinator_->archive().contains("sess-live"));
  expect_index_consistent();
}

TEST_F(CoordinatorIndexTest, OperationalStatsCountArchivedRecords) {
  make_coordinator();
  add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("done-1", 0.1)).is_ok());
  env_.run_until(env_.now() + util::hours(0.2));
  ASSERT_TRUE(coordinator_->submit(training_job("done-2", 0.1)).is_ok());
  env_.run_until(env_.now() + util::hours(0.2));
  ASSERT_TRUE(coordinator_->submit(training_job("live-1", 2.0)).is_ok());
  env_.run_until(env_.now() + 30.0);

  const OperationalStats stats = coordinator_->operational_stats();
  EXPECT_EQ(stats.archived_jobs, 2);
  EXPECT_EQ(stats.live_jobs, 1);
  // Completions are counted from the archive, not lost with retirement.
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.running, 1);
  EXPECT_EQ(stats.completed + stats.running,
            stats.live_jobs + stats.archived_jobs);
}

TEST_F(CoordinatorIndexTest, NodeLossInterruptsOnlyIndexedJobs) {
  make_coordinator();
  auto& doomed = add_agent("ws-0");
  add_agent("ws-1");
  // Archive a pile of history on the doomed node first: terminal records
  // must not be touched (or even visited) by the loss path.
  for (int i = 0; i < 5; ++i) {
    const std::string id = "old-" + std::to_string(i);
    ASSERT_TRUE(coordinator_->submit(training_job(id, 0.05)).is_ok());
    env_.run_until(env_.now() + util::hours(0.1));
    ASSERT_TRUE(coordinator_->archive().contains(id)) << id;
  }
  ASSERT_TRUE(coordinator_->submit(training_job("victim", 2.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(12));
  const std::string host = coordinator_->job("victim")->node;

  coordinator_->set_cause_hint(host, agent::DepartureKind::kEmergency);
  (host == doomed.machine_id() ? doomed : *agents_[1]).depart_emergency();
  env_.run_until(env_.now() + 60.0);

  const JobRecord* record = coordinator_->job("victim");
  EXPECT_EQ(record->interruptions, 1);
  EXPECT_EQ(record->phase, JobPhase::kRunning);  // resettled on the other
  // Archived records untouched by the interruption sweep.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(coordinator_->job("old-" + std::to_string(i))->interruptions, 0);
  }
  expect_index_consistent();
}

TEST_F(CoordinatorIndexTest, HeartbeatDbWritesAreBatched) {
  make_coordinator();  // batching on by default
  add_agent("ws-0");
  add_agent("ws-1");
  const auto& stats = coordinator_->stats();
  env_.run_until(env_.now() + 60.0);
  EXPECT_GT(stats.heartbeats_processed, 0u);
  EXPECT_GT(stats.heartbeat_db_flushes, 0u);
  // Two agents beat every interval but each flush covers the whole window:
  // strictly fewer DB writes than heartbeats processed.
  EXPECT_LT(stats.heartbeat_db_flushes, stats.heartbeats_processed);
  EXPECT_EQ(stats.heartbeat_db_touches_coalesced, stats.heartbeats_processed);
  // The batched flush still lands in the node registry.
  EXPECT_GT(database_.node(agents_[0]->machine_id())->last_heartbeat, 0.0);
}

TEST_F(CoordinatorIndexTest, UnbatchedModeWritesThrough) {
  CoordinatorConfig config;
  config.batch_heartbeat_writes = false;
  make_coordinator(config);
  add_agent("ws-0");
  const auto& stats = coordinator_->stats();
  env_.run_until(env_.now() + 60.0);
  EXPECT_GT(stats.heartbeats_processed, 0u);
  EXPECT_EQ(stats.heartbeat_db_flushes, 0u);
  EXPECT_EQ(stats.heartbeat_db_touches_coalesced, 0u);
  EXPECT_GT(database_.node(agents_[0]->machine_id())->last_heartbeat, 0.0);
}

}  // namespace
}  // namespace gpunion::sched
