#include "sched/migration.h"

#include <gtest/gtest.h>

namespace gpunion::sched {
namespace {

using agent::DepartureKind;

TEST(MigrationTrackerTest, OpenAndResume) {
  MigrationTracker tracker;
  tracker.open("job-1", "m-a", DepartureKind::kScheduled, 100.0, 0.5, 0.48,
               72.0);
  EXPECT_TRUE(tracker.has_open("job-1"));
  tracker.resumed("job-1", "m-b", 160.0, false);
  EXPECT_FALSE(tracker.has_open("job-1"));
  ASSERT_EQ(tracker.records().size(), 1u);
  const auto& record = tracker.records()[0];
  EXPECT_TRUE(record.resumed());
  EXPECT_DOUBLE_EQ(record.downtime(), 60.0);
  EXPECT_EQ(record.to_node, "m-b");
}

TEST(MigrationTrackerTest, RepeatedInterruptionMergesIntoOpenRecord) {
  MigrationTracker tracker;
  tracker.open("job-1", "m-a", DepartureKind::kEmergency, 100.0, 0.5, 0.4,
               100.0);
  // Assigned node died during redispatch: second interruption accumulates.
  tracker.open("job-1", "m-b", DepartureKind::kEmergency, 200.0, 0.4, 0.4,
               50.0);
  ASSERT_EQ(tracker.records().size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.records()[0].lost_work_seconds, 150.0);
  EXPECT_DOUBLE_EQ(tracker.records()[0].interrupted_at, 100.0);
  tracker.resumed("job-1", "m-c", 400.0, false);
  EXPECT_DOUBLE_EQ(tracker.records()[0].downtime(), 300.0);
}

TEST(MigrationTrackerTest, SuccessRateWithinWindow) {
  MigrationTracker tracker;
  tracker.open("j1", "m", DepartureKind::kScheduled, 0.0, 0.1, 0.1, 0);
  tracker.resumed("j1", "m2", 100.0, false);  // within 600 s
  tracker.open("j2", "m", DepartureKind::kScheduled, 0.0, 0.1, 0.1, 0);
  tracker.resumed("j2", "m2", 1000.0, false);  // too slow
  tracker.open("j3", "m", DepartureKind::kScheduled, 0.0, 0.1, 0.1, 0);
  // j3 never resumes.
  EXPECT_NEAR(tracker.success_rate(DepartureKind::kScheduled, 600.0),
              1.0 / 3.0, 1e-9);
  // Other causes unaffected.
  EXPECT_DOUBLE_EQ(tracker.success_rate(DepartureKind::kEmergency, 600.0),
                   0.0);
}

TEST(MigrationTrackerTest, DowntimeAndLostWorkDistributions) {
  MigrationTracker tracker;
  tracker.open("j1", "m", DepartureKind::kEmergency, 0.0, 0.5, 0.4, 300.0);
  tracker.resumed("j1", "m2", 50.0, false);
  tracker.open("j2", "m", DepartureKind::kEmergency, 0.0, 0.6, 0.5, 600.0);
  tracker.resumed("j2", "m2", 150.0, false);
  const auto downtimes = tracker.downtimes(DepartureKind::kEmergency);
  EXPECT_EQ(downtimes.count(), 2u);
  EXPECT_DOUBLE_EQ(downtimes.mean(), 100.0);
  const auto lost = tracker.lost_work_minutes(DepartureKind::kEmergency);
  EXPECT_DOUBLE_EQ(lost.mean(), 7.5);
}

TEST(MigrationTrackerTest, MigrateBackRate) {
  MigrationTracker tracker;
  // Two displacements by temporary unavailability.
  tracker.open("j1", "m-a", DepartureKind::kTemporary, 0.0, 0.5, 0.5, 0);
  tracker.resumed("j1", "m-b", 50.0, false);
  tracker.open("j2", "m-a", DepartureKind::kTemporary, 0.0, 0.5, 0.5, 0);
  tracker.resumed("j2", "m-c", 60.0, false);
  // One migrates back when m-a returns (coordinator-initiated eviction).
  auto& back = tracker.open("j1", "m-b", DepartureKind::kTemporary, 500.0,
                            0.6, 0.6, 0);
  back.migrate_back_eviction = true;
  tracker.resumed("j1", "m-a", 550.0, true);
  EXPECT_DOUBLE_EQ(tracker.migrate_back_rate(), 0.5);
  // Eviction records do not pollute the per-scenario statistics.
  EXPECT_EQ(tracker.by_cause(DepartureKind::kTemporary).size(), 3u);
  EXPECT_EQ(tracker.downtimes(DepartureKind::kTemporary).count(), 2u);
}

TEST(MigrationTrackerTest, AbandonClosesOpenRecord) {
  MigrationTracker tracker;
  tracker.open("j1", "m", DepartureKind::kScheduled, 0.0, 0.9, 0.9, 0);
  tracker.abandon("j1");
  EXPECT_FALSE(tracker.has_open("j1"));
  // The record remains (as a never-resumed interruption).
  EXPECT_EQ(tracker.interruption_count(), 1u);
}

TEST(MigrationTrackerTest, ByCauseFilters) {
  MigrationTracker tracker;
  tracker.open("j1", "m", DepartureKind::kScheduled, 0, 0, 0, 0);
  tracker.resumed("j1", "m2", 1, false);
  tracker.open("j2", "m", DepartureKind::kEmergency, 0, 0, 0, 0);
  EXPECT_EQ(tracker.by_cause(DepartureKind::kScheduled).size(), 1u);
  EXPECT_EQ(tracker.by_cause(DepartureKind::kEmergency).size(), 1u);
  EXPECT_EQ(tracker.by_cause(DepartureKind::kTemporary).size(), 0u);
}

}  // namespace
}  // namespace gpunion::sched
