// Fractional GPU slots end to end: coordinator + real agents over the
// simulated network, packed_sharing strategy.  Covers slot packing,
// oversubscription denial, per-tenant memory-cap enforcement and
// migrate-back of a shared slot.
#include <gtest/gtest.h>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "sched/coordinator.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

class FractionalSharingTest : public ::testing::Test {
 protected:
  FractionalSharingTest() : env_(7), net_(env_, {}) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(registry_
                    .push(container::make_image("jupyter-dl", "latest",
                                                "nvidia/cuda:12.1-runtime",
                                                8ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
    net_.register_endpoint("nas", [this](net::Message&& msg) {
      if (msg.kind != agent::kRestoreRequest) return;
      const auto& request =
          std::any_cast<const agent::RestoreRequest&>(msg.payload);
      net::Message data;
      data.from = "nas";
      data.to = request.requester;
      data.kind = agent::kRestoreData;
      data.traffic_class = net::TrafficClass::kMigration;
      data.size_bytes = std::max<std::uint64_t>(1, request.bytes);
      data.payload = agent::RestoreData{request.job_id};
      ASSERT_TRUE(net_.send(std::move(data)).is_ok());
    });
  }

  void make_coordinator() {
    CoordinatorConfig config;
    config.strategy = std::string(kPackedSharing);
    coordinator_ =
        std::make_unique<Coordinator>(env_, net_, database_, store_, config);
    coordinator_->start();
  }

  agent::ProviderAgent& add_agent(hw::NodeSpec spec,
                                  const std::string& group = "vision") {
    nodes_.push_back(std::make_unique<hw::NodeModel>(std::move(spec)));
    agent::AgentConfig config;
    config.owner_group = group;
    config.enable_telemetry = false;
    agents_.push_back(std::make_unique<agent::ProviderAgent>(
        env_, net_, *nodes_.back(), registry_, store_, config));
    agents_.back()->join();
    env_.run_until(env_.now() + 1.0);
    return *agents_.back();
  }

  workload::JobSpec session(const std::string& id, double hours = 2.0) {
    return workload::make_interactive_session(id, hours, "theory", env_.now());
  }

  int running_on(const std::string& machine_id) const {
    int n = 0;
    for (const auto& [job_id, record] : coordinator_->jobs()) {
      if (record.phase == JobPhase::kRunning && record.node == machine_id) {
        ++n;
      }
    }
    return n;
  }

  sim::Environment env_;
  net::SimNetwork net_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
};

TEST_F(FractionalSharingTest, SessionsPackOntoOneSharedGpu) {
  make_coordinator();
  auto& provider = add_agent(hw::workstation_3090("ws-0"));  // 1 GPU, 4 slots
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        coordinator_->submit(session("sess-" + std::to_string(i))).is_ok());
  }
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(running_on(provider.machine_id()), 3);
  EXPECT_EQ(provider.running_jobs(), 3u);
  // All three are fractional tenants of the single physical GPU.
  EXPECT_EQ(nodes_[0]->free_gpu_count(), 0);
  EXPECT_EQ(nodes_[0]->free_shared_slot_count(), 1);
  for (int i = 0; i < 3; ++i) {
    const JobRecord* record =
        coordinator_->job("sess-" + std::to_string(i));
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->fractional_slot);
    const auto allocations =
        database_.allocations_for_job("sess-" + std::to_string(i));
    ASSERT_EQ(allocations.size(), 1u);
    EXPECT_DOUBLE_EQ(allocations[0].gpu_fraction, 0.25);
    EXPECT_TRUE(allocations[0].interactive);
  }
  // Scheduling view agrees after a heartbeat settles.
  const NodeInfo* node = coordinator_->directory().find(provider.machine_id());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->free_gpus, 0);
  EXPECT_EQ(node->free_shared_slots, 1);
}

TEST_F(FractionalSharingTest, OversubscriptionDeniedUntilSlotFrees) {
  make_coordinator();
  auto& provider = add_agent(hw::workstation_3090("ws-0"));
  // Four short sessions fill the 4 slots; the fifth must wait.  Sessions
  // are 0.1 h so a slot frees before the fifth's queue patience expires.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        coordinator_->submit(session("sess-" + std::to_string(i), 0.1))
            .is_ok());
  }
  ASSERT_TRUE(coordinator_->submit(session("late", 0.1)).is_ok());
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(running_on(provider.machine_id()), 4);
  EXPECT_EQ(coordinator_->job("late")->phase, JobPhase::kPending);
  // A tenant finishing frees its slot and admits the fifth session.
  env_.run_until(env_.now() + util::hours(0.15));
  EXPECT_EQ(coordinator_->job("late")->phase, JobPhase::kRunning);
  EXPECT_TRUE(coordinator_->job("late")->fractional_slot);
}

TEST_F(FractionalSharingTest, MemoryCapForcesWholeGpuPlacement) {
  make_coordinator();
  add_agent(hw::workstation_3090("ws-0"));
  // 10 GB exceeds the 24/4 = 6 GB per-tenant cap: the session must take the
  // whole device even under packed_sharing.
  auto big = session("big-mem");
  big.requirements.gpu_memory_gb = 10.0;
  ASSERT_TRUE(coordinator_->submit(std::move(big)).is_ok());
  env_.run_until(env_.now() + 60.0);
  const JobRecord* record = coordinator_->job("big-mem");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_FALSE(record->fractional_slot);
  const auto allocations = database_.allocations_for_job("big-mem");
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_DOUBLE_EQ(allocations[0].gpu_fraction, 1.0);
  // The device is exclusively held: a regular session cannot share it.
  ASSERT_TRUE(coordinator_->submit(session("small")).is_ok());
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(coordinator_->job("small")->phase, JobPhase::kPending);
}

TEST_F(FractionalSharingTest, SharedSlotMigratesBackAfterTemporaryLoss) {
  make_coordinator();
  auto& flaky = add_agent(hw::workstation_3090("ws-0"));
  add_agent(hw::workstation_3090("ws-1"));
  // A shareable training job: opts into a time-sliced slot.
  workload::JobSpec job = workload::make_training_job(
      "shared-train", workload::cnn_small(), 2.0, "nlp", env_.now());
  job.requirements.shareable = true;
  ASSERT_TRUE(coordinator_->submit(std::move(job)).is_ok());
  env_.run_until(env_.now() + 30.0);
  const JobRecord* record = coordinator_->job("shared-train");
  ASSERT_NE(record, nullptr);
  ASSERT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_TRUE(record->fractional_slot);
  const std::string origin = record->node;
  env_.run_until(env_.now() + util::minutes(15));  // one checkpoint in

  agent::ProviderAgent* origin_agent =
      flaky.machine_id() == origin ? &flaky : agents_[1].get();
  agent::ProviderAgent* refuge_agent =
      flaky.machine_id() == origin ? agents_[1].get() : &flaky;
  coordinator_->set_cause_hint(origin_agent->machine_id(),
                               agent::DepartureKind::kTemporary);
  origin_agent->depart_emergency();
  env_.run_until(env_.now() + util::minutes(5));
  // Migrated to the refuge as a fractional tenant again.
  ASSERT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_EQ(record->node, refuge_agent->machine_id());
  EXPECT_TRUE(record->fractional_slot);

  origin_agent->rejoin();
  env_.run_until(env_.now() + util::minutes(5));
  // Migrate-back landed the shared tenant on its origin slot.
  EXPECT_EQ(record->node, origin_agent->machine_id());
  EXPECT_EQ(record->migrate_backs, 1);
  EXPECT_TRUE(record->fractional_slot);
  // The refuge's slot was returned.
  EXPECT_EQ(refuge_agent->running_jobs(), 0u);
  env_.run_until(env_.now() + 30.0);
  const NodeInfo* refuge_node =
      coordinator_->directory().find(refuge_agent->machine_id());
  ASSERT_NE(refuge_node, nullptr);
  EXPECT_EQ(refuge_node->free_gpus, 1);
  EXPECT_EQ(refuge_node->free_shared_slots, 0);
}

}  // namespace
}  // namespace gpunion::sched
