// Coordinator behaviour with real agents over the simulated network.
#include "sched/coordinator.h"

#include <gtest/gtest.h>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() : env_(3), net_(env_, {}) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(registry_
                    .push(container::make_image("jupyter-dl", "latest",
                                                "nvidia/cuda:12.1-runtime",
                                                8ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
    net_.register_endpoint("nas", [this](net::Message&& msg) {
      if (msg.kind != agent::kRestoreRequest) return;
      const auto& request =
          std::any_cast<const agent::RestoreRequest&>(msg.payload);
      net::Message data;
      data.from = "nas";
      data.to = request.requester;
      data.kind = agent::kRestoreData;
      data.traffic_class = net::TrafficClass::kMigration;
      data.size_bytes = std::max<std::uint64_t>(1, request.bytes);
      data.payload = agent::RestoreData{request.job_id};
      ASSERT_TRUE(net_.send(std::move(data)).is_ok());
    });
  }

  void make_coordinator(CoordinatorConfig config = {}) {
    coordinator_ =
        std::make_unique<Coordinator>(env_, net_, database_, store_, config);
    coordinator_->start();
  }

  agent::ProviderAgent& add_agent(const std::string& hostname,
                                  hw::NodeSpec spec,
                                  const std::string& group = "vision") {
    nodes_.push_back(std::make_unique<hw::NodeModel>(std::move(spec)));
    agent::AgentConfig config;
    config.owner_group = group;
    config.enable_telemetry = false;
    agents_.push_back(std::make_unique<agent::ProviderAgent>(
        env_, net_, *nodes_.back(), registry_, store_, config));
    agents_.back()->join();
    env_.run_until(env_.now() + 1.0);
    (void)hostname;
    return *agents_.back();
  }

  workload::JobSpec training_job(const std::string& id, double hours = 1.0) {
    return workload::make_training_job(id, workload::cnn_small(), hours,
                                       "nlp", env_.now());
  }

  /// The agent currently running `job_id` (placement is strategy-dependent).
  agent::ProviderAgent& agent_running(const std::string& job_id) {
    const JobRecord* record = coordinator_->job(job_id);
    EXPECT_NE(record, nullptr);
    for (auto& provider : agents_) {
      if (provider->machine_id() == record->node) return *provider;
    }
    ADD_FAILURE() << "no agent for node " << record->node;
    return *agents_.front();
  }

  /// Some agent other than `provider`.
  agent::ProviderAgent& other_agent(const agent::ProviderAgent& provider) {
    for (auto& candidate : agents_) {
      if (candidate.get() != &provider) return *candidate;
    }
    ADD_FAILURE() << "no other agent";
    return *agents_.front();
  }

  sim::Environment env_;
  net::SimNetwork net_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
};

TEST_F(CoordinatorTest, RegistrationPopulatesDirectoryAndDb) {
  make_coordinator();
  auto& provider = add_agent("ws-0", hw::workstation_3090("ws-0"));
  const NodeInfo* node = coordinator_->directory().find(provider.machine_id());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->gpu_count, 1);
  EXPECT_EQ(node->status, db::NodeStatus::kActive);
  EXPECT_FALSE(node->token_hash.empty());
  EXPECT_TRUE(database_.node(provider.machine_id()).ok());
}

TEST_F(CoordinatorTest, SubmitDispatchesAndCompletes) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.25)).is_ok());
  env_.run_until(env_.now() + 30.0);
  const JobRecord* record = coordinator_->job("job-1");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  env_.run_until(env_.now() + util::hours(0.35));
  EXPECT_EQ(record->phase, JobPhase::kCompleted);
  EXPECT_EQ(coordinator_->stats().jobs_completed, 1);
  // Allocation ledger closed as completed.
  const auto allocations = database_.allocations_for_job("job-1");
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].outcome, db::AllocationOutcome::kCompleted);
}

TEST_F(CoordinatorTest, DuplicateSubmitRejected) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1")).is_ok());
  EXPECT_EQ(coordinator_->submit(training_job("job-1")).code(),
            util::StatusCode::kAlreadyExists);
}

TEST_F(CoordinatorTest, QueuesWhenNoCapacityThenRunsOnRelease) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.2)).is_ok());
  ASSERT_TRUE(coordinator_->submit(training_job("job-2", 0.2)).is_ok());
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kRunning);
  EXPECT_EQ(coordinator_->job("job-2")->phase, JobPhase::kPending);
  env_.run_until(env_.now() + util::hours(0.3));
  EXPECT_EQ(coordinator_->job("job-2")->phase, JobPhase::kRunning);
  env_.run_until(env_.now() + util::hours(0.3));
  EXPECT_EQ(coordinator_->stats().jobs_completed, 2);
}

TEST_F(CoordinatorTest, EmergencyDepartureDetectedAndJobMigrated) {
  make_coordinator();
  auto& doomed = add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 2.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(15));  // one checkpoint at 10 min
  ASSERT_EQ(coordinator_->job("job-1")->phase, JobPhase::kRunning);
  const double progress_before =
      coordinator_->job("job-1")->checkpointed_progress;
  EXPECT_GT(progress_before, 0.0);

  // Spare capacity arrives, then the first provider yanks the cable.
  add_agent("ws-1", hw::workstation_3090("ws-1"));
  doomed.depart_emergency();
  env_.run_until(env_.now() + 60.0);

  const JobRecord* record = coordinator_->job("job-1");
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_EQ(record->node, agents_[1]->machine_id());
  EXPECT_EQ(record->interruptions, 1);
  EXPECT_EQ(record->migrations, 1);
  // Restored from checkpoint, not from scratch.
  EXPECT_DOUBLE_EQ(record->checkpointed_progress, progress_before);
  // Migration tracker has a resumed record.
  const auto& migrations = coordinator_->migrations().records();
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_TRUE(migrations[0].resumed());
  EXPECT_EQ(migrations[0].cause, agent::DepartureKind::kEmergency);
  // Detection took at least the 3-miss deadline.
  EXPECT_GE(migrations[0].downtime(), 6.0);
}

TEST_F(CoordinatorTest, ScheduledDepartureUsesFreshCheckpoint) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  add_agent("ws-1", hw::workstation_3090("ws-1"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 4.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(5));  // before first periodic ckpt

  auto& leaving = agent_running("job-1");
  coordinator_->set_cause_hint(leaving.machine_id(),
                               agent::DepartureKind::kScheduled);
  leaving.depart_scheduled();
  env_.run_until(env_.now() + 60.0);

  const JobRecord* record = coordinator_->job("job-1");
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  // Fresh grace-window checkpoint carried real progress despite no periodic
  // checkpoint having fired yet.
  EXPECT_GT(record->checkpointed_progress, 0.01);
  const auto& migrations = coordinator_->migrations().records();
  ASSERT_EQ(migrations.size(), 1u);
  EXPECT_EQ(migrations[0].cause, agent::DepartureKind::kScheduled);
  // Scheduled departures are detected instantly (notice, not heartbeat).
  EXPECT_LT(migrations[0].downtime(), 60.0);
}

TEST_F(CoordinatorTest, NoCheckpointRestorePolicyRestartsFromScratch) {
  CoordinatorConfig config;
  config.policy.checkpoint_restore = false;
  make_coordinator(config);
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  add_agent("ws-1", hw::workstation_3090("ws-1"));
  workload::JobSpec job = training_job("job-1", 2.0);
  job.checkpoint_interval = 0;  // platform without ALC integration
  ASSERT_TRUE(coordinator_->submit(std::move(job)).is_ok());
  env_.run_until(env_.now() + util::minutes(30));
  agent_running("job-1").depart_emergency();
  env_.run_until(env_.now() + util::minutes(2));
  const JobRecord* record = coordinator_->job("job-1");
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_DOUBLE_EQ(record->checkpointed_progress, 0.0);
  EXPECT_GT(record->lost_work_seconds, util::minutes(25));
}

TEST_F(CoordinatorTest, InteractiveSessionDeniedAfterPatience) {
  CoordinatorConfig config;
  config.session_patience = 300.0;
  make_coordinator(config);
  // No agents at all: session can never be placed.
  workload::JobSpec session = workload::make_interactive_session(
      "sess-1", 1.0, "theory", env_.now());
  ASSERT_TRUE(coordinator_->submit(std::move(session)).is_ok());
  env_.run_until(env_.now() + 301.0);
  EXPECT_EQ(coordinator_->job("sess-1")->phase, JobPhase::kDenied);
  EXPECT_EQ(coordinator_->stats().sessions_denied, 1);
}

TEST_F(CoordinatorTest, InteractiveSessionPriorityBeatsTraining) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  // Fill the single GPU with a short job (shorter than session patience).
  ASSERT_TRUE(coordinator_->submit(training_job("running", 0.1)).is_ok());
  env_.run_until(env_.now() + 30.0);
  // Queue one training job and one session; the session must win the GPU.
  ASSERT_TRUE(coordinator_->submit(training_job("queued-train", 1.0)).is_ok());
  workload::JobSpec session = workload::make_interactive_session(
      "sess-1", 0.5, "theory", env_.now());
  ASSERT_TRUE(coordinator_->submit(std::move(session)).is_ok());
  env_.run_until(env_.now() + util::hours(0.15));
  EXPECT_EQ(coordinator_->job("sess-1")->phase, JobPhase::kRunning);
  EXPECT_EQ(coordinator_->job("queued-train")->phase, JobPhase::kPending);
}

TEST_F(CoordinatorTest, SessionDisruptedOnDeparture) {
  make_coordinator();
  auto& doomed = add_agent("ws-0", hw::workstation_3090("ws-0"));
  workload::JobSpec session = workload::make_interactive_session(
      "sess-1", 2.0, "theory", env_.now());
  ASSERT_TRUE(coordinator_->submit(std::move(session)).is_ok());
  env_.run_until(env_.now() + util::minutes(10));
  ASSERT_EQ(coordinator_->job("sess-1")->phase, JobPhase::kRunning);
  doomed.depart_emergency();
  env_.run_until(env_.now() + util::minutes(2));
  EXPECT_EQ(coordinator_->job("sess-1")->phase, JobPhase::kSessionDisrupted);
  EXPECT_EQ(coordinator_->stats().sessions_disrupted, 1);
}

TEST_F(CoordinatorTest, MigrateBackAfterTemporaryUnavailability) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  add_agent("ws-1", hw::workstation_3090("ws-1"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 6.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(15));
  auto& flaky = agent_running("job-1");
  auto& refuge = other_agent(flaky);

  coordinator_->set_cause_hint(flaky.machine_id(),
                               agent::DepartureKind::kTemporary);
  flaky.depart_emergency();
  env_.run_until(env_.now() + util::minutes(5));
  ASSERT_EQ(coordinator_->job("job-1")->node, refuge.machine_id());

  flaky.rejoin();
  env_.run_until(env_.now() + util::minutes(5));
  const JobRecord* record = coordinator_->job("job-1");
  EXPECT_EQ(record->node, flaky.machine_id());
  EXPECT_EQ(record->migrate_backs, 1);
  EXPECT_GT(coordinator_->migrations().migrate_back_rate(), 0.99);
}

TEST_F(CoordinatorTest, CancelPendingAndRunning) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("running", 1.0)).is_ok());
  ASSERT_TRUE(coordinator_->submit(training_job("queued", 1.0)).is_ok());
  env_.run_until(env_.now() + 30.0);
  ASSERT_TRUE(coordinator_->cancel("queued").is_ok());
  EXPECT_EQ(coordinator_->job("queued")->phase, JobPhase::kCancelled);
  ASSERT_TRUE(coordinator_->cancel("running").is_ok());
  env_.run_until(env_.now() + 30.0);
  EXPECT_EQ(coordinator_->job("running")->phase, JobPhase::kCancelled);
  // GPU freed at the agent.
  EXPECT_EQ(nodes_[0]->free_gpu_count(), 1);
  EXPECT_EQ(coordinator_->cancel("ghost").code(),
            util::StatusCode::kNotFound);
}

TEST_F(CoordinatorTest, CompatibilityConstraintsRouteToRightHardware) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));        // 24 GB, CC 8.6
  add_agent("srv-bio", hw::server_2xa100("srv-bio"));     // 80 GB, CC 8.0
  // transformer-large needs 40 GB VRAM -> only the A100 node fits.
  workload::JobSpec big = workload::make_training_job(
      "big", workload::transformer_large(), 1.0, "bio", env_.now());
  ASSERT_TRUE(coordinator_->submit(std::move(big)).is_ok());
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(coordinator_->job("big")->node, agents_[1]->machine_id());
}

TEST_F(CoordinatorTest, ReliabilityDegradationAvoidsFlakyNodeForLongJobs) {
  CoordinatorConfig config;
  config.strategy = std::string(kReliabilityAware);
  make_coordinator(config);
  auto& flaky = add_agent("ws-0", hw::workstation_3090("ws-0"));
  add_agent("ws-1", hw::workstation_3090("ws-1"));
  // Make ws-0 flaky: three quick departures.
  for (int i = 0; i < 3; ++i) {
    flaky.depart_emergency();
    env_.run_until(env_.now() + 30.0);
    flaky.rejoin();
    env_.run_until(env_.now() + 5.0);
  }
  ASSERT_TRUE(coordinator_->submit(training_job("long-job", 20.0)).is_ok());
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(coordinator_->job("long-job")->node, agents_[1]->machine_id());
}

TEST_F(CoordinatorTest, HeartbeatAuthRejectsForgedToken) {
  make_coordinator();
  auto& provider = add_agent("ws-0", hw::workstation_3090("ws-0"));
  agent::Heartbeat forged;
  forged.machine_id = provider.machine_id();
  forged.auth_token = "stolen-token";
  forged.seq = 9999;
  forged.free_gpus = 0;
  net::Message msg;
  msg.from = provider.machine_id();
  msg.to = "coordinator";
  msg.kind = agent::kHeartbeat;
  msg.payload = forged;
  ASSERT_TRUE(net_.send(std::move(msg)).is_ok());
  env_.run_until(env_.now() + 1.0);
  EXPECT_EQ(coordinator_->stats().auth_failures, 1);
  const NodeInfo* node = coordinator_->directory().find(provider.machine_id());
  EXPECT_NE(node->last_heartbeat_seq, 9999u);
}

TEST_F(CoordinatorTest, PausedProviderReceivesNoNewWork) {
  make_coordinator();
  auto& provider = add_agent("ws-0", hw::workstation_3090("ws-0"));
  provider.set_paused(true);
  env_.run_until(env_.now() + 5.0);
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.2)).is_ok());
  env_.run_until(env_.now() + util::minutes(5));
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kPending);
  provider.set_paused(false);
  env_.run_until(env_.now() + util::minutes(1));
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kRunning);
}

TEST_F(CoordinatorTest, KillSwitchNoticeRequeuesGuests) {
  make_coordinator();
  auto& provider = add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("guest", 2.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(12));  // past first checkpoint
  provider.kill_switch();
  env_.run_until(env_.now() + 10.0);
  const JobRecord* record = coordinator_->job("guest");
  EXPECT_EQ(record->interruptions, 1);
  // The eviction preserved the latest checkpoint for the relaunch.
  EXPECT_GT(record->checkpointed_progress, 0.0);
  // The node itself is still active (kill-switch is not a departure — the
  // provider did not pause), so the guest is redispatched; it may already
  // be running again by now.
  const NodeInfo* node = coordinator_->directory().find(provider.machine_id());
  EXPECT_EQ(node->status, db::NodeStatus::kActive);
  env_.run_until(env_.now() + util::minutes(2));
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  // The allocation ledger recorded the killed run separately.
  const auto allocations = database_.allocations_for_job("guest");
  ASSERT_GE(allocations.size(), 2u);
  EXPECT_EQ(allocations[0].outcome, db::AllocationOutcome::kKilled);
}

TEST_F(CoordinatorTest, WithdrawRemovesPendingJobEntirely) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.5)).is_ok());
  ASSERT_TRUE(coordinator_->submit(training_job("job-2", 0.5)).is_ok());
  env_.run_until(env_.now() + 30.0);
  ASSERT_EQ(coordinator_->job("job-2")->phase, JobPhase::kPending);

  // Running jobs cannot be withdrawn; pending jobs can.
  EXPECT_EQ(coordinator_->withdraw("job-1").status().code(),
            util::StatusCode::kFailedPrecondition);
  auto withdrawn = coordinator_->withdraw("job-2");
  ASSERT_TRUE(withdrawn.ok());
  EXPECT_EQ(withdrawn->spec.id, "job-2");
  EXPECT_DOUBLE_EQ(withdrawn->checkpointed_progress, 0.0);

  // Gone without a trace: no record, no archive entry, no queue row — and
  // the id is free again (the job now belongs to another campus).
  EXPECT_EQ(coordinator_->job("job-2"), nullptr);
  EXPECT_EQ(database_.queue_depth(), 0u);
  EXPECT_EQ(coordinator_->stats().jobs_withdrawn, 1);
  EXPECT_EQ(coordinator_->withdraw("job-2").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_TRUE(coordinator_->submit(withdrawn->spec).is_ok());
  env_.run_until(env_.now() + util::hours(1.2));
  EXPECT_EQ(coordinator_->stats().jobs_completed, 2);
}

TEST_F(CoordinatorTest, SubmitWithStartProgressRestoresFromSeededChain) {
  make_coordinator();
  add_agent("ws-0", hw::workstation_3090("ws-0"));
  // A checkpoint shipped in from another campus seeds the local store; the
  // submit carries the durable progress it represents.
  auto job = training_job("migrant", 1.0);
  ASSERT_TRUE(store_
                  .write("migrant", job.state.state_bytes,
                         /*dirty_fraction=*/1.0, /*progress=*/0.6,
                         env_.now())
                  .ok());
  ASSERT_TRUE(coordinator_->submit(job, /*start_progress=*/0.6).is_ok());
  env_.run_until(env_.now() + 60.0);
  const JobRecord* record = coordinator_->job("migrant");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_GE(record->checkpointed_progress, 0.6);
  // 40% of a 1 h reference job remains: done well before the full hour.
  env_.run_until(env_.now() + util::hours(0.6));
  EXPECT_EQ(record->phase, JobPhase::kCompleted);

  // Out-of-range progress is a caller bug.
  EXPECT_EQ(coordinator_->submit(training_job("bad"), 1.0).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gpunion::sched
