#include "sched/directory.h"

#include <gtest/gtest.h>

namespace gpunion::sched {
namespace {

NodeInfo make_node(const std::string& id, int gpus = 4) {
  NodeInfo info;
  info.machine_id = id;
  info.hostname = "host-" + id;
  info.gpu_count = gpus;
  info.free_gpus = gpus;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  return info;
}

TEST(DirectoryTest, UpsertAndFind) {
  Directory directory;
  directory.upsert(make_node("m-1"));
  EXPECT_NE(directory.find("m-1"), nullptr);
  EXPECT_EQ(directory.find("ghost"), nullptr);
  EXPECT_EQ(directory.size(), 1u);
}

TEST(DirectoryTest, UpsertReplaces) {
  Directory directory;
  directory.upsert(make_node("m-1", 4));
  NodeInfo updated = make_node("m-1", 8);
  directory.upsert(updated);
  EXPECT_EQ(directory.find("m-1")->gpu_count, 8);
  EXPECT_EQ(directory.size(), 1u);
}

TEST(DirectoryTest, SchedulableFiltersStatusAndAccepting) {
  Directory directory;
  directory.upsert(make_node("m-1"));
  NodeInfo paused = make_node("m-2");
  paused.accepting = false;
  directory.upsert(paused);
  NodeInfo gone = make_node("m-3");
  gone.status = db::NodeStatus::kUnavailable;
  directory.upsert(gone);
  const auto schedulable = directory.schedulable();
  ASSERT_EQ(schedulable.size(), 1u);
  EXPECT_EQ(schedulable[0]->machine_id, "m-1");
  EXPECT_EQ(directory.all().size(), 3u);
}

TEST(DirectoryTest, ReserveReleaseClamped) {
  Directory directory;
  directory.upsert(make_node("m-1", 4));
  directory.reserve_gpus("m-1", 3);
  EXPECT_EQ(directory.find("m-1")->free_gpus, 1);
  directory.reserve_gpus("m-1", 5);  // clamped at 0
  EXPECT_EQ(directory.find("m-1")->free_gpus, 0);
  directory.release_gpus("m-1", 100);  // clamped at capacity
  EXPECT_EQ(directory.find("m-1")->free_gpus, 4);
  directory.reserve_gpus("ghost", 1);  // no-op
}

TEST(DirectoryTest, TotalGpus) {
  Directory directory;
  directory.upsert(make_node("m-1", 4));
  directory.upsert(make_node("m-2", 8));
  EXPECT_EQ(directory.total_gpus(), 12);
}

TEST(DirectoryTest, AllIsSortedByMachineId) {
  Directory directory;
  directory.upsert(make_node("m-b"));
  directory.upsert(make_node("m-a"));
  const auto all = directory.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->machine_id, "m-a");
  EXPECT_EQ(all[1]->machine_id, "m-b");
}

}  // namespace
}  // namespace gpunion::sched
