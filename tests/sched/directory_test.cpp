#include "sched/directory.h"

#include <gtest/gtest.h>

namespace gpunion::sched {
namespace {

NodeInfo make_node(const std::string& id, int gpus = 4) {
  NodeInfo info;
  info.machine_id = id;
  info.hostname = "host-" + id;
  info.gpu_count = gpus;
  info.free_gpus = gpus;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  return info;
}

TEST(DirectoryTest, UpsertAndFind) {
  Directory directory;
  directory.upsert(make_node("m-1"));
  EXPECT_NE(directory.find("m-1"), nullptr);
  EXPECT_EQ(directory.find("ghost"), nullptr);
  EXPECT_EQ(directory.size(), 1u);
}

TEST(DirectoryTest, UpsertReplaces) {
  Directory directory;
  directory.upsert(make_node("m-1", 4));
  NodeInfo updated = make_node("m-1", 8);
  directory.upsert(updated);
  EXPECT_EQ(directory.find("m-1")->gpu_count, 8);
  EXPECT_EQ(directory.size(), 1u);
}

TEST(DirectoryTest, SchedulableFiltersStatusAndAccepting) {
  Directory directory;
  directory.upsert(make_node("m-1"));
  NodeInfo paused = make_node("m-2");
  paused.accepting = false;
  directory.upsert(paused);
  NodeInfo gone = make_node("m-3");
  gone.status = db::NodeStatus::kUnavailable;
  directory.upsert(gone);
  const auto schedulable = directory.schedulable();
  ASSERT_EQ(schedulable.size(), 1u);
  EXPECT_EQ(schedulable[0]->machine_id, "m-1");
  EXPECT_EQ(directory.all().size(), 3u);
}

TEST(DirectoryTest, ReserveReleaseClamped) {
  Directory directory;
  directory.upsert(make_node("m-1", 4));
  directory.reserve_gpus("m-1", 3);
  EXPECT_EQ(directory.find("m-1")->free_gpus, 1);
  directory.reserve_gpus("m-1", 5);  // clamped at 0
  EXPECT_EQ(directory.find("m-1")->free_gpus, 0);
  directory.release_gpus("m-1", 100);  // clamped at capacity
  EXPECT_EQ(directory.find("m-1")->free_gpus, 4);
  directory.reserve_gpus("ghost", 1);  // no-op
}

TEST(DirectoryTest, TotalGpus) {
  Directory directory;
  directory.upsert(make_node("m-1", 4));
  directory.upsert(make_node("m-2", 8));
  EXPECT_EQ(directory.total_gpus(), 12);
}

TEST(DirectoryTest, AllIsSortedByMachineId) {
  Directory directory;
  directory.upsert(make_node("m-b"));
  directory.upsert(make_node("m-a"));
  const auto all = directory.all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->machine_id, "m-a");
  EXPECT_EQ(all[1]->machine_id, "m-b");
}

TEST(DirectoryTest, SlotReserveOpensSharedGpuAndReleaseReturnsIt) {
  Directory directory;
  NodeInfo info = make_node("m-1", 2);
  info.slots_per_gpu = 4;
  info.share_memory_cap_gb = 6.0;
  directory.upsert(info);
  // First slot opens a whole GPU in shared mode.
  EXPECT_TRUE(directory.reserve_slot("m-1"));
  EXPECT_EQ(directory.find("m-1")->free_gpus, 1);
  EXPECT_EQ(directory.find("m-1")->free_shared_slots, 3);
  // Subsequent slots drain the shared GPU before opening another.
  EXPECT_TRUE(directory.reserve_slot("m-1"));
  EXPECT_EQ(directory.find("m-1")->free_gpus, 1);
  EXPECT_EQ(directory.find("m-1")->free_shared_slots, 2);
  directory.release_slot("m-1");
  EXPECT_EQ(directory.find("m-1")->free_shared_slots, 3);
  // Sharing disabled or unknown node: no slot.
  NodeInfo unshared = make_node("m-2", 1);
  unshared.slots_per_gpu = 1;
  directory.upsert(unshared);
  EXPECT_FALSE(directory.reserve_slot("m-2"));
  EXPECT_FALSE(directory.reserve_slot("ghost"));
}

TEST(DirectoryTest, SlotReserveDeniedWhenEverythingTaken) {
  Directory directory;
  NodeInfo info = make_node("m-1", 1);
  info.slots_per_gpu = 2;
  directory.upsert(info);
  EXPECT_TRUE(directory.reserve_slot("m-1"));
  EXPECT_TRUE(directory.reserve_slot("m-1"));
  // 2 slots on 1 GPU: the third tenant is denied (oversubscription).
  EXPECT_FALSE(directory.reserve_slot("m-1"));
}

NodeInfo view_node(const std::string& id, int free, double mem, double cc,
                   const std::string& group) {
  NodeInfo info = make_node(id, 8);
  info.free_gpus = free;
  info.gpu_memory_gb = mem;
  info.compute_capability = cc;
  info.owner_group = group;
  return info;
}

TEST(ClusterViewTest, WholeGpuCandidatesFilterAndAreSorted) {
  Directory directory;
  directory.upsert(view_node("m-c", 4, 24.0, 8.6, "vision"));
  directory.upsert(view_node("m-a", 2, 48.0, 8.6, "nlp"));
  directory.upsert(view_node("m-b", 0, 80.0, 8.0, "bio"));  // nothing free
  NodeInfo paused = view_node("m-d", 8, 24.0, 8.6, "vision");
  paused.accepting = false;
  directory.upsert(paused);

  auto candidates =
      directory.view().whole_gpu_candidates(1, 8.0, 7.0, nullptr);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0]->machine_id, "m-a");  // sorted by id
  EXPECT_EQ(candidates[1]->machine_id, "m-c");

  // Capacity bucket: 3 GPUs needed -> only m-c.
  candidates = directory.view().whole_gpu_candidates(3, 8.0, 7.0, nullptr);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->machine_id, "m-c");

  // VRAM filter.
  candidates = directory.view().whole_gpu_candidates(1, 40.0, 7.0, nullptr);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->machine_id, "m-a");

  // Group restriction uses the per-group index.
  const std::string group = "nlp";
  candidates = directory.view().whole_gpu_candidates(1, 8.0, 7.0, &group);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->machine_id, "m-a");
}

TEST(ClusterViewTest, DirtyInvalidationTracksMutations) {
  Directory directory;
  directory.upsert(view_node("m-1", 2, 24.0, 8.6, "vision"));
  auto candidates =
      directory.view().whole_gpu_candidates(2, 8.0, 7.0, nullptr);
  ASSERT_EQ(candidates.size(), 1u);

  // Reservation moves the node out of the >=2 bucket.
  directory.reserve_gpus("m-1", 1);
  EXPECT_TRUE(
      directory.view().whole_gpu_candidates(2, 8.0, 7.0, nullptr).empty());
  ASSERT_EQ(
      directory.view().whole_gpu_candidates(1, 8.0, 7.0, nullptr).size(), 1u);

  // Mutation through the non-const find() pointer is picked up too.
  directory.find("m-1")->accepting = false;
  EXPECT_TRUE(
      directory.view().whole_gpu_candidates(1, 8.0, 7.0, nullptr).empty());
  directory.find("m-1")->accepting = true;
  directory.release_gpus("m-1", 1);
  EXPECT_EQ(
      directory.view().whole_gpu_candidates(2, 8.0, 7.0, nullptr).size(), 1u);
  EXPECT_EQ(directory.view().total_free_gpus(), 2);
}

TEST(DirectoryTest, CapacitySummaryTracksMutationsIncrementally) {
  Directory directory;
  NodeInfo sharing = make_node("m-1", 4);
  sharing.slots_per_gpu = 4;
  directory.upsert(sharing);
  directory.upsert(make_node("m-2", 2));

  CapacitySummary summary = directory.capacity_summary();
  EXPECT_EQ(summary.nodes, 2);
  EXPECT_EQ(summary.schedulable_nodes, 2);
  EXPECT_EQ(summary.total_gpus, 6);
  EXPECT_EQ(summary.free_gpus, 6);
  EXPECT_EQ(summary.free_shared_slots, 0);

  // Reservations, slots, and status flips all land in the summary.
  directory.reserve_gpus("m-2", 2);
  ASSERT_TRUE(directory.reserve_slot("m-1"));  // opens a GPU in shared mode
  summary = directory.capacity_summary();
  EXPECT_EQ(summary.free_gpus, 3);
  EXPECT_EQ(summary.free_shared_slots, 3);

  directory.find("m-1")->status = db::NodeStatus::kDeparted;
  summary = directory.capacity_summary();
  EXPECT_EQ(summary.nodes, 2);           // still in the directory
  EXPECT_EQ(summary.schedulable_nodes, 1);
  EXPECT_EQ(summary.total_gpus, 6);      // hardware does not vanish
  EXPECT_EQ(summary.free_gpus, 0);       // but is not schedulable capacity
  EXPECT_EQ(summary.free_shared_slots, 0);

  // Re-registering with different hardware keeps the GPU total exact.
  directory.upsert(make_node("m-2", 8));
  summary = directory.capacity_summary();
  EXPECT_EQ(summary.total_gpus, 12);
  EXPECT_EQ(summary.free_gpus, 8);
  EXPECT_EQ(directory.total_gpus(), 12);
  // Hardware envelope: monotone maxima over everything ever registered.
  EXPECT_EQ(summary.max_node_gpus, 8);
  NodeInfo big = make_node("m-3", 2);
  big.gpu_memory_gb = 80.0;
  big.compute_capability = 9.0;
  directory.upsert(big);
  summary = directory.capacity_summary();
  EXPECT_EQ(summary.max_node_gpus, 8);
  EXPECT_DOUBLE_EQ(summary.max_gpu_memory_gb, 80.0);
  EXPECT_DOUBLE_EQ(summary.max_compute_capability, 9.0);
}

TEST(ClusterViewTest, FractionalCandidatesHonourCapAndCapacity) {
  Directory directory;
  NodeInfo sharing = view_node("m-share", 1, 24.0, 8.6, "vision");
  sharing.slots_per_gpu = 4;
  sharing.share_memory_cap_gb = 6.0;
  directory.upsert(sharing);
  NodeInfo unshared = view_node("m-solo", 4, 24.0, 8.6, "vision");
  unshared.slots_per_gpu = 1;
  directory.upsert(unshared);

  auto candidates =
      directory.view().fractional_candidates(4.0, 7.0, nullptr);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->machine_id, "m-share");

  // Per-tenant memory cap enforced.
  EXPECT_TRUE(directory.view().fractional_candidates(8.0, 7.0, nullptr)
                  .empty());

  // Fully booked: no free GPU, no free slot.
  directory.find("m-share")->free_gpus = 0;
  directory.find("m-share")->free_shared_slots = 0;
  EXPECT_TRUE(directory.view().fractional_candidates(4.0, 7.0, nullptr)
                  .empty());
  // A slot freed on a shared GPU re-admits the node.
  directory.release_slot("m-share");
  ASSERT_EQ(
      directory.view().fractional_candidates(4.0, 7.0, nullptr).size(), 1u);
}

}  // namespace
}  // namespace gpunion::sched
