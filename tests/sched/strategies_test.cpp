#include "sched/strategies.h"

#include <gtest/gtest.h>

#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

NodeInfo make_node(const std::string& id, int gpus, int free, double mem,
                   double cc, const std::string& group = "g") {
  NodeInfo info;
  info.machine_id = id;
  info.owner_group = group;
  info.gpu_count = gpus;
  info.free_gpus = free;
  info.gpu_memory_gb = mem;
  info.compute_capability = cc;
  info.gpu_tflops = 35.6;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  return info;
}

workload::JobSpec job(double mem = 8.0, double cc = 7.0, int gpus = 1) {
  workload::JobSpec spec = workload::make_training_job(
      "j", workload::cnn_small(), 2.0, "vision", 0.0);
  spec.requirements.gpu_memory_gb = mem;
  spec.requirements.min_compute_capability = cc;
  spec.requirements.gpu_count = gpus;
  return spec;
}

TEST(EligibilityTest, CapacityAndCompatibility) {
  ReliabilityPredictor reliability;
  const auto spec = job(30.0, 8.0, 1);
  // Plenty of VRAM.
  EXPECT_TRUE(node_eligible(make_node("a", 2, 2, 80.0, 8.0), spec, true,
                            reliability, 0.0, false));
  // VRAM too small.
  EXPECT_FALSE(node_eligible(make_node("b", 2, 2, 24.0, 8.6), spec, true,
                             reliability, 0.0, false));
  // Compute capability too low.
  EXPECT_FALSE(node_eligible(make_node("c", 2, 2, 80.0, 7.0), spec, true,
                             reliability, 0.0, false));
  // No free GPU.
  EXPECT_FALSE(node_eligible(make_node("d", 2, 0, 80.0, 8.0), spec, true,
                             reliability, 0.0, false));
}

TEST(EligibilityTest, CrossGroupSwitch) {
  ReliabilityPredictor reliability;
  const auto spec = job();  // owner_group = vision
  const auto other = make_node("a", 1, 1, 24.0, 8.6, "nlp");
  EXPECT_TRUE(node_eligible(other, spec, /*cross_group=*/true, reliability,
                            0.0, false));
  EXPECT_FALSE(node_eligible(other, spec, /*cross_group=*/false, reliability,
                             0.0, false));
  const auto own = make_node("b", 1, 1, 24.0, 8.6, "vision");
  EXPECT_TRUE(node_eligible(own, spec, /*cross_group=*/false, reliability,
                            0.0, false));
}

TEST(EligibilityTest, DegradationKeepsLongJobsOffFlakyNodes) {
  ReliabilityPredictor reliability;
  reliability.record_departure("flaky", 0.0);
  reliability.record_departure("flaky", 0.0);
  reliability.record_departure("flaky", 0.0);  // score 0.25 -> ~3.8 h cap
  auto spec = job();
  spec.reference_duration = util::hours(20);
  const auto flaky = make_node("flaky", 1, 1, 24.0, 8.6);
  EXPECT_FALSE(node_eligible(flaky, spec, true, reliability, 0.0,
                             /*enforce_degradation=*/true));
  EXPECT_TRUE(node_eligible(flaky, spec, true, reliability, 0.0,
                            /*enforce_degradation=*/false));
  // Short job is fine even on the flaky node.
  auto short_spec = job();
  short_spec.reference_duration = util::hours(1);
  EXPECT_TRUE(node_eligible(flaky, short_spec, true, reliability, 0.0, true));
}

TEST(StrategiesTest, RoundRobinRotates) {
  NodeSelector selector(AllocationStrategy::kRoundRobin);
  ReliabilityPredictor reliability;
  const auto a = make_node("a", 1, 1, 24, 8.6);
  const auto b = make_node("b", 1, 1, 24, 8.6);
  const auto c = make_node("c", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> eligible = {&a, &b, &c};
  const auto spec = job();
  EXPECT_EQ(selector.select(eligible, spec, reliability, 0)->machine_id, "a");
  EXPECT_EQ(selector.select(eligible, spec, reliability, 0)->machine_id, "b");
  EXPECT_EQ(selector.select(eligible, spec, reliability, 0)->machine_id, "c");
  EXPECT_EQ(selector.select(eligible, spec, reliability, 0)->machine_id, "a");
}

TEST(StrategiesTest, LeastLoadedPicksEmptiestNode) {
  NodeSelector selector(AllocationStrategy::kLeastLoaded);
  ReliabilityPredictor reliability;
  const auto busy = make_node("busy", 8, 1, 24, 8.6);
  const auto idle = make_node("idle", 8, 7, 24, 8.6);
  std::vector<const NodeInfo*> eligible = {&busy, &idle};
  EXPECT_EQ(selector.select(eligible, job(), reliability, 0)->machine_id,
            "idle");
}

TEST(StrategiesTest, BestFitPrefersTightestVram) {
  NodeSelector selector(AllocationStrategy::kBestFit);
  ReliabilityPredictor reliability;
  const auto a100 = make_node("a100", 2, 2, 80, 8.0);
  const auto ws = make_node("ws", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> eligible = {&a100, &ws};
  // An 8 GB job should land on the 24 GB card, preserving the A100.
  EXPECT_EQ(selector.select(eligible, job(8.0), reliability, 0)->machine_id,
            "ws");
}

TEST(StrategiesTest, ReliabilityAwarePrefersSteadyNode) {
  NodeSelector selector(AllocationStrategy::kReliabilityAware);
  ReliabilityPredictor reliability;
  reliability.record_departure("flaky", 0.0);
  const auto flaky = make_node("flaky", 1, 1, 24, 8.6);
  const auto steady = make_node("steady", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> eligible = {&flaky, &steady};
  EXPECT_EQ(selector.select(eligible, job(), reliability, 0.0)->machine_id,
            "steady");
}

TEST(StrategiesTest, EmptyEligibleReturnsNull) {
  NodeSelector selector(AllocationStrategy::kRoundRobin);
  ReliabilityPredictor reliability;
  EXPECT_EQ(selector.select({}, job(), reliability, 0), nullptr);
}

TEST(StrategiesTest, Names) {
  EXPECT_EQ(allocation_strategy_name(AllocationStrategy::kRoundRobin),
            "round_robin");
  EXPECT_EQ(allocation_strategy_name(AllocationStrategy::kReliabilityAware),
            "reliability_aware");
}

}  // namespace
}  // namespace gpunion::sched
