#include "sched/strategies.h"

#include <gtest/gtest.h>

#include "sched/placement_engine.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

NodeInfo make_node(const std::string& id, int gpus, int free, double mem,
                   double cc, const std::string& group = "g") {
  NodeInfo info;
  info.machine_id = id;
  info.owner_group = group;
  info.gpu_count = gpus;
  info.free_gpus = free;
  info.gpu_memory_gb = mem;
  info.compute_capability = cc;
  info.gpu_tflops = 35.6;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  return info;
}

workload::JobSpec job(double mem = 8.0, double cc = 7.0, int gpus = 1) {
  workload::JobSpec spec = workload::make_training_job(
      "j", workload::cnn_small(), 2.0, "vision", 0.0);
  spec.requirements.gpu_memory_gb = mem;
  spec.requirements.min_compute_capability = cc;
  spec.requirements.gpu_count = gpus;
  return spec;
}

std::unique_ptr<PlacementStrategy> make(std::string_view name) {
  auto strategy =
      PlacementStrategyFactory::instance().create(std::string(name));
  EXPECT_NE(strategy, nullptr) << name;
  return strategy;
}

TEST(FactoryTest, BuiltInsRegistered) {
  const auto names = PlacementStrategyFactory::instance().names();
  for (auto expected : {kRoundRobin, kLeastLoaded, kBestFit,
                        kReliabilityAware, kPackedSharing}) {
    bool found = false;
    for (const auto& name : names) {
      if (name == expected) found = true;
    }
    EXPECT_TRUE(found) << expected;
    auto strategy = make(expected);
    EXPECT_EQ(strategy->name(), expected);
  }
  EXPECT_EQ(PlacementStrategyFactory::instance().create("no_such_policy"),
            nullptr);
}

TEST(FactoryTest, ExternalStrategyRegistersWithoutCoordinatorChanges) {
  class AlwaysFirst : public PlacementStrategy {
   public:
    std::string_view name() const override { return "always_first"; }
    const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                           const workload::JobSpec&, const PlacementContext&,
                           bool) override {
      return candidates.empty() ? nullptr : candidates.front();
    }
  };
  PlacementStrategyFactory::instance().register_strategy(
      "always_first", [] { return std::make_unique<AlwaysFirst>(); });
  auto strategy = make("always_first");
  EXPECT_EQ(strategy->name(), "always_first");
}

TEST(EligibilityTest, CapacityAndCompatibility) {
  ReliabilityPredictor reliability;
  const auto spec = job(30.0, 8.0, 1);
  // Plenty of VRAM.
  EXPECT_TRUE(node_eligible(make_node("a", 2, 2, 80.0, 8.0), spec, true,
                            reliability, 0.0, false));
  // VRAM too small.
  EXPECT_FALSE(node_eligible(make_node("b", 2, 2, 24.0, 8.6), spec, true,
                             reliability, 0.0, false));
  // Compute capability too low.
  EXPECT_FALSE(node_eligible(make_node("c", 2, 2, 80.0, 7.0), spec, true,
                             reliability, 0.0, false));
  // No free GPU.
  EXPECT_FALSE(node_eligible(make_node("d", 2, 0, 80.0, 8.0), spec, true,
                             reliability, 0.0, false));
}

TEST(EligibilityTest, CrossGroupSwitch) {
  ReliabilityPredictor reliability;
  const auto spec = job();  // owner_group = vision
  const auto other = make_node("a", 1, 1, 24.0, 8.6, "nlp");
  EXPECT_TRUE(node_eligible(other, spec, /*cross_group=*/true, reliability,
                            0.0, false));
  EXPECT_FALSE(node_eligible(other, spec, /*cross_group=*/false, reliability,
                             0.0, false));
  const auto own = make_node("b", 1, 1, 24.0, 8.6, "vision");
  EXPECT_TRUE(node_eligible(own, spec, /*cross_group=*/false, reliability,
                            0.0, false));
}

TEST(EligibilityTest, DegradationKeepsLongJobsOffFlakyNodes) {
  ReliabilityPredictor reliability;
  reliability.record_departure("flaky", 0.0);
  reliability.record_departure("flaky", 0.0);
  reliability.record_departure("flaky", 0.0);  // score 0.25 -> ~3.8 h cap
  auto spec = job();
  spec.reference_duration = util::hours(20);
  const auto flaky = make_node("flaky", 1, 1, 24.0, 8.6);
  EXPECT_FALSE(node_eligible(flaky, spec, true, reliability, 0.0,
                             /*enforce_degradation=*/true));
  EXPECT_TRUE(node_eligible(flaky, spec, true, reliability, 0.0,
                            /*enforce_degradation=*/false));
  // Short job is fine even on the flaky node.
  auto short_spec = job();
  short_spec.reference_duration = util::hours(1);
  EXPECT_TRUE(node_eligible(flaky, short_spec, true, reliability, 0.0, true));
}

TEST(EligibilityTest, SlotEligibility) {
  auto session = workload::make_interactive_session("s", 1.0, "vision", 0.0);
  NodeInfo node = make_node("a", 1, 1, 24.0, 8.6);
  node.slots_per_gpu = 4;
  node.share_memory_cap_gb = 8.0;
  EXPECT_TRUE(slot_eligible(node, session, true));
  // Sharing disabled on the node.
  NodeInfo unshared = node;
  unshared.slots_per_gpu = 1;
  EXPECT_FALSE(slot_eligible(unshared, session, true));
  // Memory above the per-tenant cap.
  auto big = session;
  big.requirements.gpu_memory_gb = 12.0;
  EXPECT_FALSE(slot_eligible(node, big, true));
  // Nothing free at all.
  NodeInfo full = node;
  full.free_gpus = 0;
  full.free_shared_slots = 0;
  EXPECT_FALSE(slot_eligible(full, session, true));
  // Free slot on a shared GPU suffices even with no whole GPU free.
  full.free_shared_slots = 2;
  EXPECT_TRUE(slot_eligible(full, session, true));
  // Whole-GPU (non-shareable) jobs never take slots.
  EXPECT_FALSE(slot_eligible(node, job(), true));
}

TEST(StrategiesTest, RoundRobinRotatesDeterministically) {
  auto selector = make(kRoundRobin);
  auto twin = make(kRoundRobin);
  const auto a = make_node("a", 1, 1, 24, 8.6);
  const auto b = make_node("b", 1, 1, 24, 8.6);
  const auto c = make_node("c", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> candidates = {&a, &b, &c};
  const auto spec = job();
  const PlacementContext context{nullptr, 0.0};
  for (auto expected : {"a", "b", "c", "a"}) {
    EXPECT_EQ(selector->select(candidates, spec, context, false)->machine_id,
              expected);
    // A fresh instance fed the same state produces the same sequence.
    EXPECT_EQ(twin->select(candidates, spec, context, false)->machine_id,
              expected);
  }
}

TEST(StrategiesTest, LeastLoadedPicksEmptiestNode) {
  auto selector = make(kLeastLoaded);
  const auto busy = make_node("busy", 8, 1, 24, 8.6);
  const auto idle = make_node("idle", 8, 7, 24, 8.6);
  std::vector<const NodeInfo*> candidates = {&busy, &idle};
  const PlacementContext context{nullptr, 0.0};
  EXPECT_EQ(selector->select(candidates, job(), context, false)->machine_id,
            "idle");
}

TEST(StrategiesTest, BestFitPrefersTightestVram) {
  auto selector = make(kBestFit);
  const auto a100 = make_node("a100", 2, 2, 80, 8.0);
  const auto ws = make_node("ws", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> candidates = {&a100, &ws};
  const PlacementContext context{nullptr, 0.0};
  // An 8 GB job should land on the 24 GB card, preserving the A100.
  EXPECT_EQ(selector->select(candidates, job(8.0), context, false)->machine_id,
            "ws");
}

TEST(StrategiesTest, ReliabilityAwarePrefersSteadyNode) {
  auto selector = make(kReliabilityAware);
  EXPECT_TRUE(selector->enforce_degradation());
  ReliabilityPredictor reliability;
  reliability.record_departure("flaky", 0.0);
  const auto flaky = make_node("flaky", 1, 1, 24, 8.6);
  const auto steady = make_node("steady", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> candidates = {&flaky, &steady};
  const PlacementContext context{&reliability, 0.0};
  EXPECT_EQ(selector->select(candidates, job(), context, false)->machine_id,
            "steady");
}

TEST(StrategiesTest, PackedSharingPacksTightestSharedGpu) {
  auto selector = make(kPackedSharing);
  auto session = workload::make_interactive_session("s", 1.0, "vision", 0.0);
  EXPECT_TRUE(selector->wants_fractional(session));
  EXPECT_FALSE(selector->wants_fractional(job()));

  NodeInfo fresh = make_node("fresh", 2, 2, 24, 8.6);
  fresh.slots_per_gpu = 4;
  fresh.share_memory_cap_gb = 6.0;
  NodeInfo tight = make_node("tight", 2, 0, 24, 8.6);
  tight.slots_per_gpu = 4;
  tight.share_memory_cap_gb = 6.0;
  tight.free_shared_slots = 1;  // one slot left on a shared GPU
  NodeInfo loose = make_node("loose", 2, 0, 24, 8.6);
  loose.slots_per_gpu = 4;
  loose.share_memory_cap_gb = 6.0;
  loose.free_shared_slots = 3;  // freshly opened shared GPU
  std::vector<const NodeInfo*> candidates = {&fresh, &loose, &tight};
  const PlacementContext context{nullptr, 0.0};
  // Tightest shared GPU first: keep whole devices free.
  EXPECT_EQ(selector->select(candidates, session, context, true)->machine_id,
            "tight");
  // With no partially-filled shared GPU anywhere, open one best-fit.
  std::vector<const NodeInfo*> only_fresh = {&fresh};
  EXPECT_EQ(
      selector->select(only_fresh, session, context, true)->machine_id,
      "fresh");
  // Whole-GPU pass behaves like best_fit.
  const auto a100 = make_node("a100", 2, 2, 80, 8.0);
  const auto ws = make_node("ws", 1, 1, 24, 8.6);
  std::vector<const NodeInfo*> whole = {&a100, &ws};
  EXPECT_EQ(selector->select(whole, job(8.0), context, false)->machine_id,
            "ws");
}

TEST(StrategiesTest, EmptyCandidatesReturnNull) {
  const PlacementContext context{nullptr, 0.0};
  for (auto name : {kRoundRobin, kLeastLoaded, kBestFit, kReliabilityAware,
                    kPackedSharing}) {
    auto selector = make(name);
    EXPECT_EQ(selector->select({}, job(), context, false), nullptr) << name;
  }
}

TEST(StrategiesTest, SingleCallDeterminismAcrossInstances) {
  // Every stateless strategy must pick the same node for the same
  // candidate set, whichever instance runs it.
  const auto a = make_node("a", 4, 2, 24, 8.6);
  const auto b = make_node("b", 8, 5, 48, 8.6);
  const auto c = make_node("c", 1, 1, 24, 8.9);
  std::vector<const NodeInfo*> candidates = {&a, &b, &c};
  ReliabilityPredictor reliability;
  reliability.record_departure("b", 0.0);
  const PlacementContext context{&reliability, 100.0};
  for (auto name : {kLeastLoaded, kBestFit, kReliabilityAware,
                    kPackedSharing}) {
    auto first = make(name);
    auto second = make(name);
    const NodeInfo* pick = first->select(candidates, job(), context, false);
    ASSERT_NE(pick, nullptr) << name;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(second->select(candidates, job(), context, false), pick)
          << name;
    }
  }
}

}  // namespace
}  // namespace gpunion::sched
