// Placement engine: strategy resolution, eligibility, determinism and the
// fractional-slot decision path over an indexed ClusterView.
#include "sched/placement_engine.h"

#include <gtest/gtest.h>

#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

NodeInfo make_node(const std::string& id, const std::string& group, int gpus,
                   int free, double mem, double cc, int slots = 1) {
  NodeInfo info;
  info.machine_id = id;
  info.owner_group = group;
  info.gpu_count = gpus;
  info.free_gpus = free;
  info.gpu_memory_gb = mem;
  info.compute_capability = cc;
  info.gpu_tflops = 35.6;
  info.slots_per_gpu = slots;
  info.share_memory_cap_gb = slots > 1 ? mem / slots : 0.0;
  info.status = db::NodeStatus::kActive;
  info.accepting = true;
  return info;
}

workload::JobSpec training(double mem = 8.0, int gpus = 1) {
  workload::JobSpec spec = workload::make_training_job(
      "train", workload::cnn_small(), 2.0, "vision", 0.0);
  spec.requirements.gpu_memory_gb = mem;
  spec.requirements.gpu_count = gpus;
  return spec;
}

workload::JobSpec session(double mem = 4.0) {
  workload::JobSpec spec =
      workload::make_interactive_session("sess", 1.0, "vision", 0.0);
  spec.requirements.gpu_memory_gb = mem;
  return spec;
}

class PlacementEngineTest : public ::testing::Test {
 protected:
  Directory directory_;
  ReliabilityPredictor reliability_;
  PlatformPolicy policy_;
};

TEST_F(PlacementEngineTest, UnknownStrategyFallsBackToRoundRobin) {
  PlacementEngine engine(directory_, reliability_, policy_, "nonsense");
  EXPECT_EQ(engine.strategy_name(), kRoundRobin);
}

TEST_F(PlacementEngineTest, PlacesOnEligibleNodeOnly) {
  directory_.upsert(make_node("m-small", "vision", 1, 1, 24.0, 8.6));
  directory_.upsert(make_node("m-big", "bio", 2, 2, 80.0, 8.0));
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kBestFit));
  auto decision = engine.place(training(40.0), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->node->machine_id, "m-big");
  EXPECT_FALSE(decision->fractional);
  // Nothing fits 4 GPUs.
  EXPECT_FALSE(engine.place(training(8.0, 4), "", 0.0).has_value());
}

TEST_F(PlacementEngineTest, CrossGroupPolicyRestrictsToOwnSilo) {
  directory_.upsert(make_node("m-vision", "vision", 1, 1, 24.0, 8.6));
  directory_.upsert(make_node("m-nlp", "nlp", 8, 8, 48.0, 8.6));
  policy_.cross_group_sharing = false;
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kLeastLoaded));
  auto decision = engine.place(training(), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->node->machine_id, "m-vision");
}

TEST_F(PlacementEngineTest, PreferredNodeWinsWhenEligible) {
  directory_.upsert(make_node("m-a", "vision", 1, 1, 24.0, 8.6));
  directory_.upsert(make_node("m-b", "vision", 1, 1, 24.0, 8.6));
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kRoundRobin));
  for (int i = 0; i < 3; ++i) {
    auto decision = engine.place(training(), "m-b", 0.0);
    ASSERT_TRUE(decision.has_value());
    EXPECT_EQ(decision->node->machine_id, "m-b");
  }
  // Preference for a full/unknown node is ignored, not fatal.
  directory_.reserve_gpus("m-b", 1);
  auto decision = engine.place(training(), "m-b", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->node->machine_id, "m-a");
}

TEST_F(PlacementEngineTest, DeterministicUnderIdenticalClusterState) {
  auto populate = [](Directory& directory) {
    directory.upsert(make_node("m-a", "vision", 4, 2, 24.0, 8.6, 4));
    directory.upsert(make_node("m-b", "nlp", 8, 5, 48.0, 8.6, 4));
    directory.upsert(make_node("m-c", "bio", 2, 2, 80.0, 8.0, 4));
    directory.upsert(make_node("m-d", "vision", 1, 1, 24.0, 8.9, 4));
  };
  ReliabilityPredictor reliability;
  reliability.record_departure("m-b", 0.0);
  for (const auto& name :
       PlacementStrategyFactory::instance().names()) {
    Directory first_directory;
    populate(first_directory);
    Directory second_directory;
    populate(second_directory);
    PlacementEngine first(first_directory, reliability, policy_, name);
    PlacementEngine second(second_directory, reliability, policy_, name);
    for (const auto& job : {training(8.0), training(40.0), session()}) {
      auto a = first.place(job, "", 50.0);
      auto b = second.place(job, "", 50.0);
      ASSERT_EQ(a.has_value(), b.has_value()) << name << " " << job.id;
      if (a) {
        EXPECT_EQ(a->node->machine_id, b->node->machine_id)
            << name << " " << job.id;
        EXPECT_EQ(a->fractional, b->fractional) << name << " " << job.id;
      }
    }
  }
}

TEST_F(PlacementEngineTest, PackedSharingPlacesSessionsFractionally) {
  directory_.upsert(make_node("m-a", "vision", 2, 2, 24.0, 8.6, 4));
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kPackedSharing));
  auto decision = engine.place(session(), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->fractional);
  // Training is never fractional under packed_sharing (not shareable).
  decision = engine.place(training(), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->fractional);
}

TEST_F(PlacementEngineTest, PolicySwitchDisablesFractionalPlacement) {
  directory_.upsert(make_node("m-a", "vision", 2, 2, 24.0, 8.6, 4));
  policy_.fractional_sharing = false;
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kPackedSharing));
  auto decision = engine.place(session(), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->fractional);
}

TEST_F(PlacementEngineTest, SessionTooBigForSlotFallsBackToWholeGpu) {
  // 24 GB GPU, 4 slots -> 6 GB cap; a 10 GB session cannot share.
  directory_.upsert(make_node("m-a", "vision", 2, 2, 24.0, 8.6, 4));
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kPackedSharing));
  auto decision = engine.place(session(10.0), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_FALSE(decision->fractional);
}

TEST_F(PlacementEngineTest, FractionalDeniedWhenSlotsExhausted) {
  NodeInfo node = make_node("m-a", "vision", 1, 0, 24.0, 8.6, 4);
  node.free_shared_slots = 1;
  directory_.upsert(node);
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kPackedSharing));
  auto decision = engine.place(session(), "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->fractional);
  // Consume the last slot: nothing left, whole-GPU pool empty too.
  ASSERT_TRUE(directory_.reserve_slot("m-a"));
  EXPECT_FALSE(engine.place(session(), "", 0.0).has_value());
}

/// Degradation-enforcing strategy that also shares: exercises the engine's
/// reliability filter on the *fractional* candidate path.
class CautiousSharingStrategy : public PlacementStrategy {
 public:
  std::string_view name() const override { return "cautious_sharing"; }
  bool enforce_degradation() const override { return true; }
  bool wants_fractional(const workload::JobSpec& job) const override {
    return job.requirements.shareable && job.requirements.gpu_count == 1;
  }
  const NodeInfo* select(const std::vector<const NodeInfo*>& candidates,
                         const workload::JobSpec&, const PlacementContext&,
                         bool) override {
    return candidates.empty() ? nullptr : candidates.front();
  }
};

TEST_F(PlacementEngineTest, AnyEligibleStopsEnumeratingAtFirstHit) {
  // 100 eligible nodes: the existence probe must examine O(1) of them
  // instead of materializing the full candidate vector (the old
  // O(free nodes)-per-gateway-probe behaviour flagged in the ROADMAP).
  for (int i = 0; i < 100; ++i) {
    directory_.upsert(make_node("m-" + std::to_string(100 + i), "vision", 1,
                                1, 24.0, 8.6));
  }
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kRoundRobin));
  const std::uint64_t before = engine.candidates_examined();
  EXPECT_TRUE(engine.any_eligible(training(), 0.0));
  const std::uint64_t probe_cost = engine.candidates_examined() - before;
  EXPECT_LE(probe_cost, 2u) << "existence probe enumerated candidates";

  // The enumerating path really would have walked the whole fleet — the
  // probe counter is shared, so the same fleet shows the contrast.
  const std::uint64_t before_full = engine.candidates_examined();
  ASSERT_TRUE(engine.place(training(), "", 0.0).has_value());
  EXPECT_GE(engine.candidates_examined() - before_full, 100u);

  // A shape nothing fits still answers false (and may examine everything:
  // correctness first, the early exit is for the common has-capacity case).
  EXPECT_FALSE(engine.any_eligible(training(8.0, 4), 0.0));
}

TEST_F(PlacementEngineTest, AnyEligibleEarlyExitMatchesFullEnumeration) {
  // The probe and the enumeration must agree on every gating dimension:
  // capacity, memory, capability, group policy, fractional preference.
  directory_.upsert(make_node("m-busy", "vision", 2, 0, 24.0, 8.6));
  directory_.upsert(make_node("m-nlp", "nlp", 4, 4, 48.0, 8.6));
  policy_.cross_group_sharing = false;
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kPackedSharing));
  // vision has no free capacity; nlp does, but the silo policy hides it.
  EXPECT_FALSE(engine.any_eligible(training(), 0.0));
  EXPECT_FALSE(engine.place(training(), "", 0.0).has_value());
  auto nlp_job = training();
  nlp_job.owner_group = "nlp";
  EXPECT_TRUE(engine.any_eligible(nlp_job, 0.0));
  // Fractional-only capacity is found by the probe's slot pass.
  NodeInfo shared = make_node("m-shared", "vision", 1, 0, 24.0, 8.6, 4);
  shared.free_shared_slots = 2;
  directory_.upsert(shared);
  EXPECT_TRUE(engine.any_eligible(session(), 0.0));
  EXPECT_FALSE(engine.any_eligible(training(), 0.0))
      << "whole-GPU job must not match slot-only capacity";
}

TEST_F(PlacementEngineTest, ProbeAgreesWithEnumerationUnderStaleMutation) {
  // Regression: the existence probe used to walk ONLY the free-capacity
  // buckets while the enumerating query's planner could pick the
  // capability range.  A node mutated through a cached Directory::find()
  // pointer AFTER the last refresh sits under stale index keys; with
  // asymmetric walks the probe then denied a job place() could serve (the
  // gateway forwarded out work its own campus could run).  Planner parity
  // makes the two paths agree under any single-node staleness.
  //
  // Fleet shape chosen so the planner prefers the capability range for
  // the high-CC job: many low-CC nodes with free GPUs, ONE high-CC node.
  for (int i = 0; i < 8; ++i) {
    directory_.upsert(
        make_node("m-low-" + std::to_string(i), "vision", 1, 1, 24.0, 8.6));
  }
  directory_.upsert(make_node("m-h100", "vision", 2, 0, 80.0, 9.0));
  PlacementEngine engine(directory_, reliability_, policy_,
                         std::string(kBestFit));

  auto h100_job = training(40.0);
  h100_job.requirements.min_compute_capability = 9.0;
  // Fully booked: neither path can place the high-CC job.
  EXPECT_FALSE(engine.any_eligible(h100_job, 0.0));
  EXPECT_FALSE(engine.place(h100_job, "", 0.0).has_value());

  // The hazard: grab the mutable entry (marks it dirty), let a query
  // refresh (clearing the mark), THEN mutate through the cached pointer.
  // The node now has free capacity but is absent from every free bucket.
  NodeInfo* stale = directory_.find("m-h100");
  ASSERT_NE(stale, nullptr);
  ASSERT_TRUE(engine.any_eligible(training(), 0.0));  // refresh happened
  stale->free_gpus = 2;

  // Both paths must answer identically — before the fix the probe said
  // false while enumeration (capability walk + live re-check) placed it.
  auto placed = engine.place(h100_job, "", 0.0);
  EXPECT_EQ(engine.any_eligible(h100_job, 0.0), placed.has_value())
      << "existence probe disagrees with enumeration";
  ASSERT_TRUE(placed.has_value());
  EXPECT_EQ(placed->node->machine_id, "m-h100");

  // The reverse mutation (capacity silently vanished) must also agree:
  // both paths live-re-check, so neither may claim eligibility.
  stale = directory_.find("m-h100");
  ASSERT_TRUE(engine.any_eligible(h100_job, 0.0));  // refresh again
  stale->free_gpus = 0;
  EXPECT_FALSE(engine.any_eligible(h100_job, 0.0));
  EXPECT_FALSE(engine.place(h100_job, "", 0.0).has_value());
}

TEST_F(PlacementEngineTest, DegradationAppliesToFractionalTraining) {
  PlacementStrategyFactory::instance().register_strategy(
      "cautious_sharing",
      [] { return std::make_unique<CautiousSharingStrategy>(); });
  // Only fractional capacity exists: no whole GPU free, one slot open.
  NodeInfo node = make_node("m-flaky", "vision", 2, 0, 24.0, 8.6, 4);
  node.free_shared_slots = 2;
  directory_.upsert(node);
  ReliabilityPredictor reliability;
  for (int i = 0; i < 3; ++i) reliability.record_departure("m-flaky", 0.0);
  PlacementEngine engine(directory_, reliability, policy_,
                         "cautious_sharing");
  auto long_job = training(4.0);
  long_job.requirements.shareable = true;
  long_job.reference_duration = util::hours(20);
  // A long shareable training job is kept off the flaky node's slots...
  EXPECT_FALSE(engine.place(long_job, "", 0.0).has_value());
  // ...while a short one may take them.
  long_job.reference_duration = util::hours(1);
  auto decision = engine.place(long_job, "", 0.0);
  ASSERT_TRUE(decision.has_value());
  EXPECT_TRUE(decision->fractional);
}

}  // namespace
}  // namespace gpunion::sched
