#include "sched/reliability.h"

#include <gtest/gtest.h>

namespace gpunion::sched {
namespace {

TEST(ReliabilityTest, UnknownNodeIsFullyTrusted) {
  ReliabilityPredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.score("m-1", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(predictor.volatility("m-1", 0.0), 0.0);
}

TEST(ReliabilityTest, DepartureHalvesScore) {
  ReliabilityPredictor predictor;
  predictor.record_departure("m-1", 0.0);
  EXPECT_NEAR(predictor.score("m-1", 0.0), 0.5, 1e-9);
  predictor.record_departure("m-1", 0.0);
  EXPECT_NEAR(predictor.score("m-1", 0.0), 1.0 / 3.0, 1e-9);
}

TEST(ReliabilityTest, EvidenceDecaysWithHalfLife) {
  ReliabilityPredictor predictor(3.0 * 86400.0);
  predictor.record_departure("m-1", 0.0);
  EXPECT_NEAR(predictor.volatility("m-1", 3.0 * 86400.0), 0.5, 1e-9);
  EXPECT_NEAR(predictor.volatility("m-1", 6.0 * 86400.0), 0.25, 1e-9);
  EXPECT_GT(predictor.score("m-1", 6.0 * 86400.0), 0.75);
}

TEST(ReliabilityTest, ScoreRecoversOverTime) {
  ReliabilityPredictor predictor;
  predictor.record_departure("m-1", 0.0);
  const double just_after = predictor.score("m-1", 1.0);
  const double week_later = predictor.score("m-1", 7.0 * 86400.0);
  EXPECT_GT(week_later, just_after);
}

TEST(ReliabilityTest, NodesAreIndependent) {
  ReliabilityPredictor predictor;
  predictor.record_departure("flaky", 0.0);
  EXPECT_LT(predictor.score("flaky", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(predictor.score("steady", 0.0), 1.0);
}

TEST(ReliabilityTest, DegradationBoundsJobLength) {
  EXPECT_GT(ReliabilityPredictor::max_job_hours(1.0), 1e6);
  EXPECT_GT(ReliabilityPredictor::max_job_hours(0.85), 1e6);
  EXPECT_NEAR(ReliabilityPredictor::max_job_hours(0.8), 24.0, 1e-9);
  EXPECT_NEAR(ReliabilityPredictor::max_job_hours(0.5), 13.0, 0.01);
  EXPECT_NEAR(ReliabilityPredictor::max_job_hours(0.2), 2.0, 1e-9);
  EXPECT_NEAR(ReliabilityPredictor::max_job_hours(0.05), 2.0, 1e-9);
}

}  // namespace
}  // namespace gpunion::sched
