// nvshare-style time-slice seats end to end: coordinator + real agents over
// the simulated network, adaptive_sharing strategy.  Covers seat packing,
// rotation + swap accounting, thrash-driven quantum widening and eviction,
// fallback to other tenancy modes, training progress conservation under
// rotation, and a randomized invariant sweep (residency exclusivity,
// oversubscription bound, progress conservation).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "sched/coordinator.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

class TimesliceSharingTest : public ::testing::Test {
 protected:
  TimesliceSharingTest() : env_(7), net_(env_, {}) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(registry_
                    .push(container::make_image("jupyter-dl", "latest",
                                                "nvidia/cuda:12.1-runtime",
                                                8ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
  }

  void make_coordinator() {
    CoordinatorConfig config;
    config.strategy = std::string(kAdaptiveSharing);
    coordinator_ =
        std::make_unique<Coordinator>(env_, net_, database_, store_, config);
    coordinator_->start();
  }

  agent::ProviderAgent& add_agent(hw::NodeSpec spec,
                                  agent::TimesliceConfig slicing = {},
                                  const std::string& group = "vision") {
    nodes_.push_back(std::make_unique<hw::NodeModel>(std::move(spec)));
    agent::AgentConfig config;
    config.owner_group = group;
    config.enable_telemetry = false;
    config.timeslice = slicing;
    agents_.push_back(std::make_unique<agent::ProviderAgent>(
        env_, net_, *nodes_.back(), registry_, store_, config));
    agents_.back()->join();
    env_.run_until(env_.now() + 1.0);
    return *agents_.back();
  }

  workload::JobSpec session(const std::string& id, double hours = 2.0,
                            double working_set_gb = 0) {
    auto spec =
        workload::make_interactive_session(id, hours, "theory", env_.now());
    if (working_set_gb > 0) spec.requirements.working_set_gb = working_set_gb;
    return spec;
  }

  int running_on(const std::string& machine_id) const {
    int n = 0;
    for (const auto& [job_id, record] : coordinator_->jobs()) {
      if (record.phase == JobPhase::kRunning && record.node == machine_id) {
        ++n;
      }
    }
    return n;
  }

  sim::Environment env_;
  net::SimNetwork net_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
};

TEST_F(TimesliceSharingTest, SessionsShareOneGpuByTimeslice) {
  make_coordinator();
  auto& provider =
      add_agent(hw::with_timeslicing(hw::workstation_3090("ws-0"), 4));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        coordinator_->submit(session("sess-" + std::to_string(i))).is_ok());
  }
  env_.run_until(env_.now() + 60.0);
  EXPECT_EQ(running_on(provider.machine_id()), 3);
  EXPECT_EQ(provider.running_jobs(), 3u);
  // All three are full-memory tenants of the single time-sliced GPU.
  EXPECT_EQ(nodes_[0]->free_gpu_count(), 0);
  EXPECT_EQ(nodes_[0]->free_timeslice_slot_count(), 1);
  const hw::GpuDevice& gpu = nodes_[0]->gpu(0);
  EXPECT_TRUE(gpu.time_sliced());
  EXPECT_EQ(gpu.holder_count(), 3);
  EXPECT_FALSE(gpu.resident().empty());
  for (int i = 0; i < 3; ++i) {
    const JobRecord* record = coordinator_->job("sess-" + std::to_string(i));
    ASSERT_NE(record, nullptr);
    EXPECT_TRUE(record->timeslice_slot);
    EXPECT_FALSE(record->fractional_slot);
    const auto allocations =
        database_.allocations_for_job("sess-" + std::to_string(i));
    ASSERT_EQ(allocations.size(), 1u);
    EXPECT_DOUBLE_EQ(allocations[0].gpu_fraction, 0.25);
  }
  // Scheduling view agrees after a heartbeat settles.
  const NodeInfo* node = coordinator_->directory().find(provider.machine_id());
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->free_gpus, 0);
  EXPECT_EQ(node->free_timeslice_slots, 1);
}

TEST_F(TimesliceSharingTest, ResidencyRotatesWithSwapAccounting) {
  make_coordinator();
  auto& provider =
      add_agent(hw::with_timeslicing(hw::workstation_3090("ws-0"), 4));
  ASSERT_TRUE(coordinator_->submit(session("a")).is_ok());
  ASSERT_TRUE(coordinator_->submit(session("b")).is_ok());
  env_.run_until(env_.now() + util::minutes(5));
  const agent::TimesliceStats& stats = provider.timeslice_stats();
  // ~10 quanta of 30 s fit in 5 minutes; every rotation between two live
  // tenants pays a swap (6 GB out + 6 GB in at 12 GB/s = 1 s).
  EXPECT_GE(stats.quanta, 4u);
  EXPECT_GE(stats.swaps, 4u);
  EXPECT_GT(stats.swap_seconds, 0.0);
  EXPECT_NEAR(stats.max_swap_per_quantum, 1.0, 1e-9);
  // No thrash at this working-set size: the quantum never widened.
  EXPECT_EQ(stats.quantum_widenings, 0u);
  EXPECT_EQ(stats.thrash_evictions, 0u);
  // Exactly one resident; the slicer and the device agree on who.
  const hw::GpuDevice& gpu = nodes_[0]->gpu(0);
  EXPECT_EQ(provider.slicer().resident(0), gpu.resident());
  EXPECT_TRUE(gpu.resident() == "a" || gpu.resident() == "b");
}

TEST_F(TimesliceSharingTest, OversizedJobFallsBackToWholeGpu) {
  make_coordinator();
  add_agent(hw::with_timeslicing(hw::workstation_3090("ws-0"), 4));
  // Working set exceeds device VRAM (no seat) and the memory request
  // exceeds the 24/4 = 6 GB fractional cap (no slot): whole device.
  auto big = session("big", 2.0, /*working_set_gb=*/30.0);
  big.requirements.gpu_memory_gb = 10.0;
  ASSERT_TRUE(coordinator_->submit(std::move(big)).is_ok());
  env_.run_until(env_.now() + 60.0);
  const JobRecord* record = coordinator_->job("big");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_FALSE(record->timeslice_slot);
  EXPECT_FALSE(record->fractional_slot);
  EXPECT_FALSE(nodes_[0]->gpu(0).time_sliced());
}

TEST_F(TimesliceSharingTest, ThrashWideningBoundsSwapCost) {
  make_coordinator();
  // Slow swap link: rotating two 20 GB working sets costs (20+20)/2 = 20 s,
  // above the 0.5 x 30 s thrash threshold — the slicer must widen the
  // quantum (once: 20 <= 0.5 x 60) instead of evicting.
  auto& provider = add_agent(hw::with_timeslicing(
      hw::workstation_3090("ws-0"), 2, /*oversub_ratio=*/2.0,
      /*host_swap_gbps=*/2.0));
  ASSERT_TRUE(coordinator_->submit(session("a", 2.0, 20.0)).is_ok());
  ASSERT_TRUE(coordinator_->submit(session("b", 2.0, 20.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(10));
  const agent::TimesliceStats& stats = provider.timeslice_stats();
  EXPECT_GE(stats.quantum_widenings, 1u);
  EXPECT_EQ(stats.thrash_evictions, 0u);
  EXPECT_GE(provider.slicer().quantum(0), 60.0);
  // Thrash avoidance keeps every paid swap within the thrash fraction of
  // the (widened) quantum — the ISSUE's 2x-oversubscription bound.
  EXPECT_LE(stats.max_swap_per_quantum,
            0.5 * provider.slicer().quantum(0) + 1e-9);
  EXPECT_EQ(provider.running_jobs(), 2u);
}

TEST_F(TimesliceSharingTest, ThrashEvictionAtMaxQuantum) {
  make_coordinator();
  agent::TimesliceConfig slicing;
  slicing.quantum = 30.0;
  slicing.max_quantum = 30.0;  // no room to widen: thrash must evict
  auto& provider = add_agent(
      hw::with_timeslicing(hw::workstation_3090("ws-0"), 2,
                           /*oversub_ratio=*/2.0, /*host_swap_gbps=*/1.0),
      slicing);
  ASSERT_TRUE(coordinator_->submit(session("a", 2.0, 20.0)).is_ok());
  ASSERT_TRUE(coordinator_->submit(session("b", 2.0, 20.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(5));
  const agent::TimesliceStats& stats = provider.timeslice_stats();
  EXPECT_GE(stats.thrash_evictions, 1u);
  // The survivor holds the device alone — no more rotations, no more swap.
  EXPECT_EQ(provider.running_jobs(), 1u);
  EXPECT_EQ(nodes_[0]->gpu(0).holder_count(), 1);
  EXPECT_EQ(nodes_[0]->gpu(0).resident(), provider.slicer().resident(0));
}

TEST_F(TimesliceSharingTest, TrainingProgressConservedUnderRotation) {
  make_coordinator();
  add_agent(hw::with_timeslicing(hw::workstation_3090("ws-0"), 4));
  // Two low-duty-cycle shareable training jobs (0.05 h = 180 s reference):
  // adaptive_sharing sends both to time-slice seats; they accrue progress
  // only while resident, so each needs >= 180 s of residency to finish.
  for (const char* id : {"train-a", "train-b"}) {
    workload::JobSpec job = workload::make_training_job(
        id, workload::cnn_small(), 0.05, "nlp", env_.now());
    job.requirements.shareable = true;
    job.requirements.duty_cycle = 0.3;
    ASSERT_TRUE(coordinator_->submit(std::move(job)).is_ok());
  }
  env_.run_until(env_.now() + util::minutes(30));
  for (const char* id : {"train-a", "train-b"}) {
    const JobRecord* record = coordinator_->job(id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->phase, JobPhase::kCompleted) << id;
    EXPECT_TRUE(record->timeslice_slot);
    // Progress conservation: a rotating tenant cannot beat full-device
    // speed (3090 speed factor = 1.0), so elapsed >= reference duration.
    EXPECT_GE(record->completed_at - record->first_dispatched_at,
              record->spec.reference_duration - 1e-6)
        << id;
  }
  // Two tenants rotating through 2 x 180 s of work: the pair takes at
  // least the serialized compute time.
  const JobRecord* a = coordinator_->job("train-a");
  const JobRecord* b = coordinator_->job("train-b");
  EXPECT_GE(std::max(a->completed_at, b->completed_at) -
                std::min(a->first_dispatched_at, b->first_dispatched_at),
            2 * 180.0 - 1e-6);
}

TEST_F(TimesliceSharingTest, RandomizedInvariantSweep) {
  make_coordinator();
  add_agent(hw::with_timeslicing(hw::workstation_3090("ws-0"), 4));
  add_agent(hw::with_timeslicing(hw::workstation_3090("ws-1"), 3));
  auto rng = env_.fork_rng("timeslice-sweep");
  // A churning population of sessions with random working sets and
  // durations, submitted over time.
  int next = 0;
  for (int round = 0; round < 12; ++round) {
    const double working_set = 4.0 + static_cast<double>(rng.next_u64() % 9);
    const double hours = 0.05 + 0.01 * static_cast<double>(rng.next_u64() % 10);
    ASSERT_TRUE(coordinator_
                    ->submit(session("sweep-" + std::to_string(next++), hours,
                                     working_set))
                    .is_ok());
    // Sweep invariants at randomized points between submissions.
    const int steps = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int s = 0; s < steps; ++s) {
      env_.run_until(env_.now() + 20.0);
      for (const auto& node : nodes_) {
        const int seats = node->spec().timeslice_tenants_per_gpu;
        const double cap =
            node->spec().timeslice_oversub_ratio * node->gpu(0).spec().memory_gb;
        for (std::size_t g = 0; g < node->gpu_count(); ++g) {
          const hw::GpuDevice& gpu = node->gpu(g);
          if (!gpu.time_sliced()) continue;
          // Residency exclusivity: exactly one resident, and it is a tenant.
          EXPECT_FALSE(gpu.resident().empty());
          EXPECT_TRUE(gpu.holds(gpu.resident()));
          // Seat-count and oversubscription bounds.
          EXPECT_LE(gpu.holder_count(), seats);
          EXPECT_LE(gpu.tenant_memory_total_gb(), cap + 1e-9);
          // Only the resident working set occupies device VRAM.
          EXPECT_LE(gpu.memory_used_gb(), gpu.spec().memory_gb + 1e-9);
        }
      }
    }
  }
  env_.run_until(env_.now() + util::hours(1));
  // Progress conservation: sessions are wall-clock; none may finish early.
  int completed = 0;
  for (int i = 0; i < next; ++i) {
    const std::string id = "sweep-" + std::to_string(i);
    const JobRecord* record = coordinator_->job(id);
    ASSERT_NE(record, nullptr) << id;
    if (record->phase != JobPhase::kCompleted) continue;
    ++completed;
    EXPECT_GE(record->completed_at - record->first_dispatched_at,
              record->spec.reference_duration - 1e-6)
        << id;
  }
  EXPECT_GT(completed, 0);
}

}  // namespace
}  // namespace gpunion::sched
