// Randomized property/invariant harness for the control plane.
//
// Drives a seeded random schedule of submit / withdraw / cancel /
// heartbeat-expiry / displacement / return / control-plane-crash events
// against a small campus
// (the real Platform: coordinator, agents, network, sharded write-behind
// database) and after every ledger flush asserts the cross-cutting
// invariants no single-path unit test covers:
//
//   * jobs conservation — live + archived + withdrawn == submitted;
//   * allocation/GPU-slot accounting — Directory::capacity_summary()'s
//     running counters equal a full rescan of the directory, and every
//     node's scheduling view stays inside [0, capacity];
//   * DB/coordinator agreement — open allocations in the (possibly
//     unflushed) ledgered DB correspond 1:1 to live running records, the
//     pending queue depth matches the live pending census, and the
//     per-node job index matches a rebuild from the live records.
//
// The seed of a failing iteration is printed via SCOPED_TRACE for exact
// reproduction (also settable with GPUNION_INVARIANT_SEED; CI runs three
// fixed seeds plus a randomized one on top of the default sweep).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "gpunion/platform.h"
#include "util/rng.h"
#include "workload/profiles.h"
#include "workload/provider_behavior.h"

namespace gpunion {
namespace {

CampusConfig invariant_campus(int nodes) {
  CampusConfig config;
  for (int i = 0; i < nodes; ++i) {
    config.nodes.push_back({hw::workstation_3090("inv-" + std::to_string(i)),
                            "group-" + std::to_string(i % 2)});
  }
  config.storage.push_back({"nas-inv", 64ULL << 30});
  config.coordinator.heartbeat_interval = 2.0;
  config.agent_defaults.heartbeat_interval = 2.0;
  config.agent_defaults.telemetry_interval = 1e9;
  config.scrape_interval = 1e9;
  // Small flush threshold so both flush triggers fire during a run.
  config.db.shard_count = 4;
  config.db.write_behind = true;
  config.db.flush_threshold = 16;
  config.db.flush_interval = 5.0;
  return config;
}

/// All cross-cutting invariants; called after every flush.
void check_invariants(Platform& platform) {
  auto& coordinator = platform.coordinator();
  const auto& stats = coordinator.stats();

  // --- Jobs conservation ----------------------------------------------------
  const int live = static_cast<int>(coordinator.jobs().size());
  const int archived = static_cast<int>(coordinator.archive().size());
  EXPECT_EQ(stats.jobs_submitted, live + archived + stats.jobs_withdrawn)
      << "conservation: live " << live << " + archived " << archived
      << " + withdrawn " << stats.jobs_withdrawn
      << " != submitted " << stats.jobs_submitted;
  for (const auto& [job_id, record] : coordinator.archive()) {
    EXPECT_TRUE(sched::job_phase_terminal(record.phase))
        << job_id << " archived while " << sched::job_phase_name(record.phase);
  }

  // --- Capacity accounting vs the indexed summary -----------------------------
  sched::CapacitySummary summary =
      coordinator.directory().capacity_summary();
  int free_gpus = 0;
  int free_slots = 0;
  int schedulable = 0;
  for (const sched::NodeInfo* node : coordinator.directory().all()) {
    EXPECT_GE(node->free_gpus, 0) << node->machine_id;
    EXPECT_LE(node->free_gpus, node->gpu_count) << node->machine_id;
    EXPECT_GE(node->free_shared_slots, 0) << node->machine_id;
    if (node->schedulable()) {
      free_gpus += node->free_gpus;
      free_slots += node->free_shared_slots;
      ++schedulable;
    }
  }
  EXPECT_EQ(summary.free_gpus, free_gpus)
      << "running free-GPU counter drifted from a directory rescan";
  EXPECT_EQ(summary.free_shared_slots, free_slots)
      << "running free-slot counter drifted from a directory rescan";
  EXPECT_EQ(summary.schedulable_nodes, schedulable);

  // --- DB state agrees with coordinator state ---------------------------------
  // Open allocations in the DB <-> live running records, 1:1.
  std::map<std::uint64_t, const db::AllocationRecord*> open_allocations;
  for (const auto& allocation : platform.database().allocation_ledger()) {
    if (allocation.outcome == db::AllocationOutcome::kRunning) {
      open_allocations[allocation.allocation_id] = &allocation;
    }
  }
  int running_with_allocation = 0;
  for (const auto& [job_id, record] : coordinator.jobs()) {
    if (record.open_allocation == 0) continue;
    ++running_with_allocation;
    EXPECT_EQ(record.phase, sched::JobPhase::kRunning)
        << job_id << " holds an allocation while "
        << sched::job_phase_name(record.phase);
    auto it = open_allocations.find(record.open_allocation);
    ASSERT_NE(it, open_allocations.end())
        << job_id << " allocation " << record.open_allocation
        << " missing or closed in the DB";
    EXPECT_EQ(it->second->job_id, job_id);
    EXPECT_EQ(it->second->machine_id, record.node)
        << job_id << " DB says " << it->second->machine_id
        << ", coordinator says " << record.node;
  }
  EXPECT_EQ(open_allocations.size(),
            static_cast<std::size_t>(running_with_allocation))
      << "DB holds open allocations for jobs the coordinator retired";

  // Pending queue depth == live pending census (probed between events).
  int pending = 0;
  for (const auto& [job_id, record] : coordinator.jobs()) {
    if (record.phase == sched::JobPhase::kPending) ++pending;
  }
  EXPECT_EQ(platform.database().queue_depth(),
            static_cast<std::size_t>(pending));

  // Per-node index == rebuild from live records.
  std::map<std::string, std::set<std::string>> expected_index;
  for (const auto& [job_id, record] : coordinator.jobs()) {
    if (!record.node.empty()) expected_index[record.node].insert(job_id);
  }
  std::size_t indexed = 0;
  for (const auto& [machine_id, expected] : expected_index) {
    EXPECT_EQ(coordinator.jobs_on(machine_id), expected) << machine_id;
    indexed += expected.size();
  }
  EXPECT_EQ(coordinator.operational_stats().nodes_with_assignments,
            expected_index.size());
  (void)indexed;
}

/// Aggregate coverage across the whole sweep: the campaigns must actually
/// exercise the paths the invariants guard, or a green run means nothing.
struct SweepCoverage {
  int submitted = 0;
  int completed = 0;
  int interruptions = 0;
  int withdrawn = 0;
  std::uint64_t ledger_entries = 0;
  std::uint64_t threshold_flushes = 0;
  std::uint64_t interval_flushes = 0;
  std::uint64_t crash_recoveries = 0;
  std::uint64_t crash_jobs_rebuilt = 0;
};

/// One seeded campaign: random event bursts, flush + invariants after each.
void run_one_seed(std::uint64_t seed, int rounds,
                  SweepCoverage* coverage = nullptr) {
  SCOPED_TRACE("GPUNION_INVARIANT_SEED=" + std::to_string(seed));
  util::Rng rng(seed);
  sim::Environment env(seed);
  const int nodes = 6;
  Platform platform(env, invariant_campus(nodes));
  platform.start();
  env.run_until(5.0);

  auto& coordinator = platform.coordinator();
  int next_job = 0;
  std::vector<std::string> submitted_ids;

  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    const int burst = static_cast<int>(rng.uniform_int(1, 4));
    for (int b = 0; b < burst; ++b) {
      const std::int64_t action = rng.uniform_int(0, 10);
      // A crashed coordinator is unreachable: clients cannot submit,
      // withdraw or cancel until it recovers (interruptions still happen —
      // providers do not wait for the control plane).
      if (platform.control_plane_crashed() && action <= 5) continue;
      switch (action) {
        case 0:
        case 1:
        case 2:
        case 3: {  // submit training (sometimes wide) or a session
          const std::string id = "job-" + std::to_string(next_job++);
          const std::string group =
              "group-" + std::to_string(rng.uniform_int(0, 1));
          if (rng.bernoulli(0.25)) {
            (void)coordinator.submit(workload::make_interactive_session(
                id, rng.uniform(0.005, 0.02), group, env.now()));
          } else {
            auto job = workload::make_training_job(
                id, workload::cnn_small(), rng.uniform(0.005, 0.05), group,
                env.now());
            job.checkpoint_interval = 30.0;
            (void)coordinator.submit(std::move(job));
          }
          submitted_ids.push_back(id);
          break;
        }
        case 4: {  // withdraw a pending job (the federation hand-off path)
          // Target a job that is actually pending so the path is exercised
          // every time one exists (withdraw on a non-pending id is also
          // covered — it must refuse, below).
          std::string pending_id;
          for (const auto& [job_id, record] : coordinator.jobs()) {
            if (record.phase == sched::JobPhase::kPending) {
              pending_id = job_id;
              break;
            }
          }
          if (pending_id.empty()) {
            if (!submitted_ids.empty()) {
              const std::string& id =
                  submitted_ids[static_cast<std::size_t>(rng.uniform_int(
                      0,
                      static_cast<std::int64_t>(submitted_ids.size() - 1)))];
              const sched::JobRecord* record = coordinator.job(id);
              const bool pending =
                  record != nullptr &&
                  record->phase == sched::JobPhase::kPending;
              EXPECT_EQ(coordinator.withdraw(id).ok(), pending) << id;
            }
            break;
          }
          auto withdrawn = coordinator.withdraw(pending_id);
          ASSERT_TRUE(withdrawn.ok()) << pending_id;
          if (rng.bernoulli(0.5)) {
            // Half the withdrawn jobs come back (a failed forward): a
            // resubmission under the same id is a fresh submit.
            (void)coordinator.submit(std::move(withdrawn->spec),
                                     withdrawn->checkpointed_progress);
          }
          break;
        }
        case 5: {  // cancel a random known job, any phase
          if (submitted_ids.empty()) break;
          (void)coordinator.cancel(submitted_ids[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(
                                     submitted_ids.size() - 1)))]);
          break;
        }
        case 6:    // displacement with notice (scheduled departure)
        case 7:    // heartbeat-expiry displacement (emergency: no notice)
        case 8: {  // temporary departure (migrate-back path)
          workload::Interruption event;
          event.at = env.now();
          event.machine_id = Platform::machine_id_for(
              "inv-" + std::to_string(rng.uniform_int(0, nodes - 1)));
          event.kind = rng.bernoulli(0.4)
                           ? agent::DepartureKind::kScheduled
                           : (rng.bernoulli(0.5)
                                  ? agent::DepartureKind::kEmergency
                                  : agent::DepartureKind::kTemporary);
          event.downtime = rng.uniform(10.0, 60.0);
          platform.inject_interruption(event);
          break;
        }
        case 9: {  // control-plane crash + WAL recovery mid-campaign
          // Downtime stays strictly below the minimum round advance (3.0 s)
          // so the coordinator is always recovered before the post-round
          // flush + invariant check runs.
          platform.crash_control_plane(rng.uniform(0.5, 2.5));
          break;
        }
        default: {  // owner kill-switch (reclaim) on a random node
          workload::Interruption event;
          event.at = env.now();
          event.machine_id = Platform::machine_id_for(
              "inv-" + std::to_string(rng.uniform_int(0, nodes - 1)));
          event.kind = agent::DepartureKind::kReclaim;
          platform.inject_interruption(event);
          break;
        }
      }
    }
    env.run_until(env.now() + rng.uniform(3.0, 25.0));
    platform.database().flush_ledger();
    check_invariants(platform);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // Drain: let everything in flight settle, then re-assert.
  env.run_until(env.now() + 400.0);
  platform.database().flush_ledger();
  check_invariants(platform);
  if (coverage != nullptr) {
    const auto& stats = coordinator.stats();
    coverage->submitted += stats.jobs_submitted;
    coverage->completed += stats.jobs_completed;
    coverage->interruptions += stats.interruptions;
    coverage->withdrawn += stats.jobs_withdrawn;
    const auto& ledger = platform.database().ledger().stats();
    coverage->ledger_entries += ledger.absorbed;
    coverage->threshold_flushes += ledger.threshold_flushes;
    coverage->interval_flushes += ledger.interval_flushes;
    const auto& recovery = coordinator.recovery_stats();
    coverage->crash_recoveries +=
        static_cast<std::uint64_t>(recovery.recoveries);
    coverage->crash_jobs_rebuilt +=
        static_cast<std::uint64_t>(recovery.jobs_rebuilt);
  }
}

TEST(CoordinatorInvariantsTest, RandomizedCampaign) {
  // GPUNION_INVARIANT_SEED pins the campaign to one seed family (CI runs
  // three fixed seeds plus a $RANDOM one); the default sweep covers 100.
  const char* pinned = std::getenv("GPUNION_INVARIANT_SEED");
  SweepCoverage coverage;
  int campaigns = 0;
  if (pinned != nullptr) {
    const std::uint64_t base = std::strtoull(pinned, nullptr, 10);
    for (std::uint64_t seed = base; seed < base + 25; ++seed) {
      run_one_seed(seed, /*rounds=*/10, &coverage);
      ++campaigns;
      if (::testing::Test::HasFatalFailure()) return;
    }
  } else {
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
      run_one_seed(seed, /*rounds=*/10, &coverage);
      ++campaigns;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The sweep is only meaningful if it hit the guarded paths (floors are
  // per-campaign averages, so the pinned-seed CI mode is held to the same
  // standard as the 100-seed default sweep).
  EXPECT_GT(coverage.submitted, 3 * campaigns);
  EXPECT_GT(coverage.completed, campaigns / 2);
  EXPECT_GT(coverage.interruptions, campaigns / 2);
  EXPECT_GT(coverage.withdrawn, campaigns / 8);
  EXPECT_GT(coverage.ledger_entries, static_cast<std::uint64_t>(campaigns) * 10);
  EXPECT_GT(coverage.threshold_flushes, 0u);
  EXPECT_GT(coverage.interval_flushes, 0u);
  // The crash action must actually fire and rebuild non-trivial state, or
  // "invariants hold across recovery" was never tested.
  EXPECT_GT(coverage.crash_recoveries, static_cast<std::uint64_t>(campaigns) / 2);
  EXPECT_GT(coverage.crash_jobs_rebuilt, 0u);
}

}  // namespace
}  // namespace gpunion
