// Policy-switch semantics: each PlatformPolicy flag must change exactly the
// behaviour it names.  These run the real coordinator + agents over the
// simulated network with one switch flipped at a time.
#include <gtest/gtest.h>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "sched/coordinator.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

class PolicySemanticsTest : public ::testing::Test {
 protected:
  PolicySemanticsTest() : env_(9), net_(env_, {}) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
  }

  void make_coordinator(PlatformPolicy policy,
                        util::Duration manual_delay = 3600.0) {
    CoordinatorConfig config;
    config.policy = policy;
    config.manual_resubmit_delay = manual_delay;
    coordinator_ = std::make_unique<Coordinator>(env_, net_, database_,
                                                 store_, config);
    coordinator_->start();
  }

  agent::ProviderAgent& add_agent(const std::string& hostname,
                                  const std::string& group) {
    nodes_.push_back(
        std::make_unique<hw::NodeModel>(hw::workstation_3090(hostname)));
    agent::AgentConfig config;
    config.owner_group = group;
    config.enable_telemetry = false;
    agents_.push_back(std::make_unique<agent::ProviderAgent>(
        env_, net_, *nodes_.back(), registry_, store_, config));
    agents_.back()->join();
    env_.run_until(env_.now() + 1.0);
    return *agents_.back();
  }

  workload::JobSpec job(const std::string& id, const std::string& group,
                        double hours = 1.0) {
    return workload::make_training_job(id, workload::cnn_small(), hours,
                                       group, env_.now());
  }

  sim::Environment env_;
  net::SimNetwork net_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
};

TEST_F(PolicySemanticsTest, CrossGroupSharingOffConfinesJobsToOwnSilo) {
  PlatformPolicy policy;
  policy.cross_group_sharing = false;
  make_coordinator(policy);
  add_agent("ws-a", "alpha");
  add_agent("ws-b", "beta");
  ASSERT_TRUE(coordinator_->submit(job("alpha-job", "alpha")).is_ok());
  ASSERT_TRUE(coordinator_->submit(job("orphan-job", "gamma")).is_ok());
  env_.run_until(env_.now() + util::minutes(5));
  // alpha's job runs on alpha's machine; gamma owns nothing and waits
  // forever.
  EXPECT_EQ(coordinator_->job("alpha-job")->node, agents_[0]->machine_id());
  EXPECT_EQ(coordinator_->job("orphan-job")->phase, JobPhase::kPending);
}

TEST_F(PolicySemanticsTest, AutoMigrationOffWaitsForHumanResubmission) {
  PlatformPolicy policy;
  policy.auto_migration = false;
  make_coordinator(policy, /*manual_delay=*/util::minutes(30));
  auto& doomed = add_agent("ws-a", "alpha");
  add_agent("ws-b", "alpha");
  ASSERT_TRUE(coordinator_->submit(job("job-1", "alpha", 3.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(12));
  auto& host = coordinator_->job("job-1")->node == doomed.machine_id()
                   ? doomed
                   : *agents_[1];
  host.depart_emergency();
  env_.run_until(env_.now() + util::minutes(10));
  // No automatic relaunch yet: the "user" resubmits after 30 minutes.
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kPending);
  env_.run_until(env_.now() + util::minutes(25));
  EXPECT_EQ(coordinator_->job("job-1")->phase, JobPhase::kRunning);
}

TEST_F(PolicySemanticsTest, MigrateBackOffLeavesJobsWhereTheyLanded) {
  PlatformPolicy policy;
  policy.migrate_back = false;
  make_coordinator(policy);
  add_agent("ws-a", "alpha");
  add_agent("ws-b", "alpha");
  ASSERT_TRUE(coordinator_->submit(job("job-1", "alpha", 4.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(12));
  const std::string origin = coordinator_->job("job-1")->node;
  auto& host = origin == agents_[0]->machine_id() ? *agents_[0]
                                                  : *agents_[1];
  coordinator_->set_cause_hint(origin, agent::DepartureKind::kTemporary);
  host.depart_emergency();
  env_.run_until(env_.now() + util::minutes(5));
  const std::string refuge = coordinator_->job("job-1")->node;
  ASSERT_NE(refuge, origin);
  host.rejoin();
  env_.run_until(env_.now() + util::minutes(10));
  // Still on the refuge: no migrate-back was issued.
  EXPECT_EQ(coordinator_->job("job-1")->node, refuge);
  EXPECT_EQ(coordinator_->job("job-1")->migrate_backs, 0);
}

TEST_F(PolicySemanticsTest, RequeueToTailLosesThePlaceInLine) {
  PlatformPolicy policy;
  policy.requeue_to_tail = true;
  make_coordinator(policy);
  auto& only = add_agent("ws-a", "alpha");
  ASSERT_TRUE(coordinator_->submit(job("running", "alpha", 2.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(12));
  ASSERT_TRUE(coordinator_->submit(job("waiting", "alpha", 0.2)).is_ok());
  // Kill the running job: under tail-requeue the waiter goes first.
  only.kill_switch();
  env_.run_until(env_.now() + util::minutes(2));
  EXPECT_EQ(coordinator_->job("waiting")->phase, JobPhase::kRunning);
  EXPECT_EQ(coordinator_->job("running")->phase, JobPhase::kPending);
}

TEST_F(PolicySemanticsTest, HeadRequeueKeepsDisplacedJobsFirst) {
  PlatformPolicy policy;  // defaults: requeue_to_tail = false
  make_coordinator(policy);
  auto& only = add_agent("ws-a", "alpha");
  ASSERT_TRUE(coordinator_->submit(job("running", "alpha", 2.0)).is_ok());
  env_.run_until(env_.now() + util::minutes(12));
  ASSERT_TRUE(coordinator_->submit(job("waiting", "alpha", 0.2)).is_ok());
  // Displace via emergency departure + return: the displaced job keeps its
  // place at the head of the queue and resumes first.
  only.depart_emergency();
  env_.run_until(env_.now() + util::minutes(2));
  only.rejoin();
  env_.run_until(env_.now() + util::minutes(2));
  EXPECT_EQ(coordinator_->job("running")->phase, JobPhase::kRunning);
  EXPECT_EQ(coordinator_->job("waiting")->phase, JobPhase::kPending);
}

}  // namespace
}  // namespace gpunion::sched
