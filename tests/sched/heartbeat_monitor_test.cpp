#include "sched/heartbeat_monitor.h"

#include <gtest/gtest.h>

namespace gpunion::sched {
namespace {

NodeInfo active_node(const std::string& id, util::SimTime last_beat) {
  NodeInfo info;
  info.machine_id = id;
  info.status = db::NodeStatus::kActive;
  info.last_heartbeat = last_beat;
  return info;
}

TEST(HeartbeatMonitorTest, DetectsSilentNodeAfterThreeMisses) {
  sim::Environment env;
  Directory directory;
  std::vector<std::string> lost;
  HeartbeatMonitor monitor(env, directory, 2.0, 3,
                           [&](const std::string& id) {
                             lost.push_back(id);
                             directory.find(id)->status =
                                 db::NodeStatus::kUnavailable;
                           });
  directory.upsert(active_node("m-1", 0.0));
  monitor.start();
  // 3 x 2 s = 6 s deadline; the sweep at t=8 is the first beyond it.
  env.run_until(5.9);
  EXPECT_TRUE(lost.empty());
  env.run_until(8.1);
  EXPECT_EQ(lost, std::vector<std::string>{"m-1"});
}

TEST(HeartbeatMonitorTest, FreshHeartbeatsPreventDetection) {
  sim::Environment env;
  Directory directory;
  int lost = 0;
  HeartbeatMonitor monitor(env, directory, 2.0, 3,
                           [&](const std::string&) { ++lost; });
  directory.upsert(active_node("m-1", 0.0));
  monitor.start();
  // Keep the node fresh.
  sim::PeriodicTimer beats(env, 2.0, [&] {
    directory.find("m-1")->last_heartbeat = env.now();
  });
  beats.start();
  env.run_until(60.0);
  EXPECT_EQ(lost, 0);
}

TEST(HeartbeatMonitorTest, IgnoresNonActiveNodes) {
  sim::Environment env;
  Directory directory;
  int lost = 0;
  HeartbeatMonitor monitor(env, directory, 2.0, 3,
                           [&](const std::string&) { ++lost; });
  NodeInfo departed = active_node("m-1", 0.0);
  departed.status = db::NodeStatus::kDeparted;
  directory.upsert(departed);
  monitor.start();
  env.run_until(30.0);
  EXPECT_EQ(lost, 0);
}

TEST(HeartbeatMonitorTest, DetectionDeadlineIsMissesTimesInterval) {
  sim::Environment env;
  Directory directory;
  HeartbeatMonitor monitor(env, directory, 5.0, 3, nullptr);
  EXPECT_DOUBLE_EQ(monitor.detection_deadline(), 15.0);
}

TEST(HeartbeatMonitorTest, ManualSweepReturnsLost) {
  sim::Environment env;
  Directory directory;
  HeartbeatMonitor monitor(env, directory, 2.0, 3,
                           [&](const std::string& id) {
                             directory.find(id)->status =
                                 db::NodeStatus::kUnavailable;
                           });
  directory.upsert(active_node("m-1", 0.0));
  directory.upsert(active_node("m-2", 0.0));
  env.schedule_at(10.0, [] {});
  env.run();
  auto lost = monitor.sweep();
  EXPECT_EQ(lost.size(), 2u);
  // Second sweep: already unavailable, nothing new.
  EXPECT_TRUE(monitor.sweep().empty());
}

}  // namespace
}  // namespace gpunion::sched
