#include "sched/heartbeat_monitor.h"

#include <gtest/gtest.h>

namespace gpunion::sched {
namespace {

NodeInfo active_node(const std::string& id, util::SimTime last_beat) {
  NodeInfo info;
  info.machine_id = id;
  info.status = db::NodeStatus::kActive;
  info.last_heartbeat = last_beat;
  return info;
}

class HeartbeatMonitorTest : public ::testing::Test {
 protected:
  /// Registers the node in the directory and the monitor's expiry order
  /// (what the coordinator does on registration).
  void track(HeartbeatMonitor& monitor, const std::string& id,
             util::SimTime at) {
    directory_.upsert(active_node(id, at));
    monitor.observe(id, at);
  }

  sim::Environment env_;
  Directory directory_;
};

TEST_F(HeartbeatMonitorTest, DetectsSilentNodeAfterThreeMisses) {
  std::vector<std::string> lost;
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3,
                           [&](const std::string& id) {
                             lost.push_back(id);
                             directory_.find(id)->status =
                                 db::NodeStatus::kUnavailable;
                           });
  track(monitor, "m-1", 0.0);
  monitor.start();
  // 3 x 2 s = 6 s deadline; the sweep at t=8 is the first beyond it.
  env_.run_until(5.9);
  EXPECT_TRUE(lost.empty());
  env_.run_until(8.1);
  EXPECT_EQ(lost, std::vector<std::string>{"m-1"});
}

TEST_F(HeartbeatMonitorTest, FreshHeartbeatsPreventDetection) {
  int lost = 0;
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3,
                           [&](const std::string&) { ++lost; });
  track(monitor, "m-1", 0.0);
  monitor.start();
  // Keep the node fresh.
  sim::PeriodicTimer beats(env_, 2.0, [&] {
    directory_.find("m-1")->last_heartbeat = env_.now();
    monitor.observe("m-1", env_.now());
  });
  beats.start();
  env_.run_until(60.0);
  EXPECT_EQ(lost, 0);
  EXPECT_EQ(monitor.tracked(), 1u);
}

TEST_F(HeartbeatMonitorTest, NonActiveNodesDroppedSilently) {
  int lost = 0;
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3,
                           [&](const std::string&) { ++lost; });
  // Observed while active, but the node announced its departure before the
  // deadline: the entry expires without a loss report.
  track(monitor, "m-1", 0.0);
  directory_.find("m-1")->status = db::NodeStatus::kDeparted;
  monitor.start();
  env_.run_until(30.0);
  EXPECT_EQ(lost, 0);
  EXPECT_EQ(monitor.tracked(), 0u);  // expired entry was discarded
}

TEST_F(HeartbeatMonitorTest, ForgetStopsTracking) {
  int lost = 0;
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3,
                           [&](const std::string&) { ++lost; });
  track(monitor, "m-1", 0.0);
  EXPECT_EQ(monitor.tracked(), 1u);
  monitor.forget("m-1");
  EXPECT_EQ(monitor.tracked(), 0u);
  monitor.start();
  env_.run_until(30.0);
  EXPECT_EQ(lost, 0);
}

TEST_F(HeartbeatMonitorTest, DetectionDeadlineIsMissesTimesInterval) {
  HeartbeatMonitor monitor(env_, directory_, 5.0, 3, nullptr);
  EXPECT_DOUBLE_EQ(monitor.detection_deadline(), 15.0);
}

TEST_F(HeartbeatMonitorTest, ManualSweepReturnsLost) {
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3,
                           [&](const std::string& id) {
                             directory_.find(id)->status =
                                 db::NodeStatus::kUnavailable;
                           });
  track(monitor, "m-1", 0.0);
  track(monitor, "m-2", 0.0);
  env_.schedule_at(10.0, [] {});
  env_.run();
  auto lost = monitor.sweep();
  EXPECT_EQ(lost.size(), 2u);
  EXPECT_EQ(monitor.last_sweep_examined(), 2u);
  // Expired entries were popped from the order: a second sweep does no
  // work at all instead of rescanning the fleet.
  EXPECT_TRUE(monitor.sweep().empty());
  EXPECT_EQ(monitor.last_sweep_examined(), 0u);
}

TEST_F(HeartbeatMonitorTest, SweepPopsOnlyExpiredEntries) {
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3, nullptr);
  // 100 fresh nodes, 3 stale ones.
  env_.schedule_at(100.0, [] {});
  env_.run();
  for (int i = 0; i < 100; ++i) {
    track(monitor, "fresh-" + std::to_string(i), env_.now());
  }
  for (int i = 0; i < 3; ++i) {
    track(monitor, "stale-" + std::to_string(i), env_.now() - 50.0);
  }
  auto lost = monitor.sweep();
  EXPECT_EQ(lost.size(), 3u);
  // The sweep's work is bounded by the expirations, not the fleet size.
  EXPECT_EQ(monitor.last_sweep_examined(), 3u);
  EXPECT_EQ(monitor.tracked(), 100u);
}

TEST_F(HeartbeatMonitorTest, OutOfOrderObservationsKeepNewest) {
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3, nullptr);
  env_.schedule_at(20.0, [] {});
  env_.run();
  track(monitor, "m-1", 20.0);
  // A delayed beat carrying an older timestamp must not roll the node's
  // expiry backwards.
  monitor.observe("m-1", 12.0);
  EXPECT_EQ(monitor.tracked(), 1u);
  env_.schedule_at(24.0, [] {});
  env_.run();
  EXPECT_TRUE(monitor.sweep().empty());  // newest observation (20) holds
  // And a genuinely newer observation replaces the old entry rather than
  // duplicating it.
  monitor.observe("m-1", 24.0);
  EXPECT_EQ(monitor.tracked(), 1u);
}

TEST_F(HeartbeatMonitorTest, ExpiryOrderUnderInterleavedBeats) {
  std::vector<std::string> lost;
  HeartbeatMonitor monitor(env_, directory_, 2.0, 3,
                           [&](const std::string& id) {
                             lost.push_back(id);
                             directory_.find(id)->status =
                                 db::NodeStatus::kUnavailable;
                           });
  track(monitor, "a", 0.0);
  track(monitor, "b", 0.0);
  track(monitor, "c", 0.0);
  // b and c keep beating out of registration order; a goes silent.
  monitor.observe("c", 3.0);
  monitor.observe("b", 4.0);
  monitor.observe("c", 5.0);
  env_.schedule_at(7.0, [] {});
  env_.run();
  EXPECT_EQ(monitor.sweep(), std::vector<std::string>{"a"});
  // b (last beat 4.0) expires next, at t > 10.
  env_.schedule_at(10.5, [] {});
  env_.run();
  EXPECT_EQ(monitor.sweep(), std::vector<std::string>{"b"});
  env_.schedule_at(11.5, [] {});
  env_.run();
  EXPECT_EQ(monitor.sweep(), std::vector<std::string>{"c"});
  EXPECT_EQ(lost, (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace gpunion::sched
