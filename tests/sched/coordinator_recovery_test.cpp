// Coordinator crash/restart lifecycle against real agents.
//
// The contract under test: a coordinator process crash loses NOTHING a
// caller was acked — on recover() the live jobs, archive, per-node
// indexes, reliability-relevant counters and in-flight dispatch decisions
// are rebuilt from the durable database, granted-but-undelivered
// dispatches are re-dispatched, and the stale-ack kill path makes a
// duplicate run impossible.  Messages sent while crashed are dropped
// (the coordinator answers nothing), which is exactly the outage the
// heartbeat reconciliation path must absorb afterwards.
#include "sched/coordinator.h"

#include <gtest/gtest.h>

#include "agent/provider_agent.h"
#include "net/sim_network.h"
#include "workload/profiles.h"

namespace gpunion::sched {
namespace {

class CoordinatorRecoveryTest : public ::testing::Test {
 protected:
  CoordinatorRecoveryTest() : env_(7), net_(env_, {}) {
    registry_.allow_base("nvidia/cuda:12.1-runtime");
    EXPECT_TRUE(registry_
                    .push(container::make_image("pytorch", "2.3-cuda12.1",
                                                "nvidia/cuda:12.1-runtime",
                                                6ULL << 30, "m"))
                    .is_ok());
    EXPECT_TRUE(store_.add_node("nas", 1ULL << 40).is_ok());
    net_.register_endpoint("nas", [this](net::Message&& msg) {
      if (msg.kind != agent::kRestoreRequest) return;
      const auto& request =
          std::any_cast<const agent::RestoreRequest&>(msg.payload);
      net::Message data;
      data.from = "nas";
      data.to = request.requester;
      data.kind = agent::kRestoreData;
      data.traffic_class = net::TrafficClass::kMigration;
      data.size_bytes = std::max<std::uint64_t>(1, request.bytes);
      data.payload = agent::RestoreData{request.job_id};
      ASSERT_TRUE(net_.send(std::move(data)).is_ok());
    });
  }

  void make_coordinator(CoordinatorConfig config = {}) {
    config.heartbeat_interval = 2.0;
    coordinator_ =
        std::make_unique<Coordinator>(env_, net_, database_, store_, config);
    coordinator_->start();
  }

  void add_agent(const std::string& hostname) {
    nodes_.push_back(
        std::make_unique<hw::NodeModel>(hw::workstation_3090(hostname)));
    agent::AgentConfig config;
    config.owner_group = "nlp";
    config.enable_telemetry = false;
    config.heartbeat_interval = 2.0;
    agents_.push_back(std::make_unique<agent::ProviderAgent>(
        env_, net_, *nodes_.back(), registry_, store_, config));
    agents_.back()->join();
    env_.run_until(env_.now() + 1.0);
  }

  workload::JobSpec training_job(const std::string& id, double hours = 0.2) {
    return workload::make_training_job(id, workload::cnn_small(), hours,
                                       "nlp", env_.now());
  }

  sim::Environment env_;
  net::SimNetwork net_;
  db::SystemDatabase database_;
  storage::CheckpointStore store_;
  container::ImageRegistry registry_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<hw::NodeModel>> nodes_;
  std::vector<std::unique_ptr<agent::ProviderAgent>> agents_;
};

TEST_F(CoordinatorRecoveryTest, RunningJobSurvivesCrashAndCompletesOnce) {
  make_coordinator();
  add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1")).is_ok());
  env_.run_until(env_.now() + 30.0);
  ASSERT_EQ(coordinator_->job("job-1")->phase, JobPhase::kRunning);
  const std::string node = coordinator_->job("job-1")->node;

  coordinator_->crash();
  EXPECT_TRUE(coordinator_->crashed());
  env_.run_until(env_.now() + 1.0);  // heartbeats land on a dead socket
  coordinator_->recover();
  EXPECT_FALSE(coordinator_->crashed());
  EXPECT_EQ(coordinator_->recovery_stats().recoveries, 1);
  EXPECT_GE(coordinator_->recovery_stats().nodes_rebuilt, 1);
  EXPECT_GE(coordinator_->recovery_stats().jobs_rebuilt, 1);

  // The rebuilt record is bound to the same node with its allocation open,
  // and the job finishes exactly once — the agent never noticed a thing.
  const JobRecord* record = coordinator_->job("job-1");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kRunning);
  EXPECT_EQ(record->node, node);
  EXPECT_NE(record->open_allocation, 0u);
  env_.run_until(env_.now() + util::hours(0.3));
  EXPECT_EQ(coordinator_->stats().jobs_completed, 1);
  const auto allocations = database_.allocations_for_job("job-1");
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].outcome, db::AllocationOutcome::kCompleted);
}

TEST_F(CoordinatorRecoveryTest, CrashMidDispatchRunsTheJobExactlyOnce) {
  make_coordinator();
  add_agent("ws-0");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1")).is_ok());
  // Walk the clock in tiny steps until the grant is in flight: the record
  // says kDispatching, the agent has not confirmed.  The ack round trip is
  // sub-millisecond on the campus LAN, so the step must be finer still.
  for (int i = 0; i < 100000; ++i) {
    if (coordinator_->job("job-1")->phase != JobPhase::kPending) break;
    env_.run_until(env_.now() + 1e-5);
  }
  ASSERT_EQ(coordinator_->job("job-1")->phase, JobPhase::kDispatching);

  // Crash across the ack window: the agent's DispatchResult hits a dead
  // coordinator and vanishes.
  coordinator_->crash();
  env_.run_until(env_.now() + 2.0);
  coordinator_->recover();
  // The durable row said granted-but-unconfirmed: requeued at the front
  // and re-dispatched immediately.
  EXPECT_EQ(coordinator_->recovery_stats().redispatched, 1);

  // Exactly one completion, one allocation — the stale-ack kill path and
  // the agent-side duplicate-dispatch handling must collapse the re-grant
  // and the original run into one.
  env_.run_until(env_.now() + util::hours(0.3));
  EXPECT_EQ(coordinator_->stats().jobs_completed, 1);
  const JobRecord* record = coordinator_->job("job-1");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->phase, JobPhase::kCompleted);
  int open = 0;
  for (const auto& allocation : database_.allocations_for_job("job-1")) {
    if (allocation.outcome == db::AllocationOutcome::kRunning) ++open;
  }
  EXPECT_EQ(open, 0) << "a duplicate run left an allocation open";
}

TEST_F(CoordinatorRecoveryTest, CountersAndArchiveSurviveRecovery) {
  make_coordinator();
  add_agent("ws-0");
  add_agent("ws-1");
  ASSERT_TRUE(coordinator_->submit(training_job("job-1", 0.05)).is_ok());
  ASSERT_TRUE(coordinator_->submit(training_job("job-2", 0.05)).is_ok());
  env_.run_until(env_.now() + util::hours(0.15));
  ASSERT_EQ(coordinator_->stats().jobs_completed, 2);
  const auto before = coordinator_->stats();
  const std::size_t archived_before = coordinator_->archive().size();

  coordinator_->crash();
  env_.run_until(env_.now() + 1.0);
  coordinator_->recover();

  // Journal-restored counters: conservation math still closes after the
  // restart (live + archived + withdrawn == submitted).
  const auto& after = coordinator_->stats();
  EXPECT_EQ(after.jobs_submitted, before.jobs_submitted);
  EXPECT_EQ(after.jobs_completed, before.jobs_completed);
  EXPECT_EQ(after.jobs_withdrawn, before.jobs_withdrawn);
  EXPECT_EQ(coordinator_->archive().size(), archived_before);
  EXPECT_EQ(after.jobs_submitted,
            static_cast<int>(coordinator_->jobs().size() +
                             coordinator_->archive().size()) +
                after.jobs_withdrawn);
}

TEST_F(CoordinatorRecoveryTest, PendingJobsKeepTheirQueuePositionAcrossCrash) {
  make_coordinator();
  // No agents yet: everything stays pending.
  ASSERT_TRUE(coordinator_->submit(training_job("job-1")).is_ok());
  ASSERT_TRUE(coordinator_->submit(training_job("job-2")).is_ok());
  env_.run_until(env_.now() + 5.0);
  ASSERT_EQ(database_.queue_depth(), 2u);

  coordinator_->crash();
  env_.run_until(env_.now() + 1.0);
  coordinator_->recover();
  EXPECT_EQ(coordinator_->recovery_stats().jobs_rebuilt, 2);
  EXPECT_EQ(database_.queue_depth(), 2u);

  // Capacity arrives after the restart; both queued jobs drain and finish.
  add_agent("ws-0");
  add_agent("ws-1");
  env_.run_until(env_.now() + util::hours(0.3));
  EXPECT_EQ(coordinator_->stats().jobs_completed, 2);
}

}  // namespace
}  // namespace gpunion::sched
